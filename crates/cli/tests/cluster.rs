//! End-to-end cluster failover: a primary/backup `iwsrv` pair over TCP,
//! a client writing through a replica group, the primary killed mid-run,
//! transparent failover, and a fresh reader verifying the backup holds
//! bit-identical pre-kill contents.

use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use iw_core::Session;
use iw_types::{desc::TypeDesc, MachineArch};

const PRIMARY_PORT: u16 = 17561;
const BACKUP_PORT: u16 = 17562;

struct Srv(Child);

impl Drop for Srv {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[allow(clippy::zombie_processes)] // killed + waited in Srv::drop
fn spawn_srv(port: u16, extra: &[String]) -> Srv {
    let child = Command::new(env!("CARGO_BIN_EXE_iwsrv"))
        .arg("--listen")
        .arg(format!("127.0.0.1:{port}"))
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn iwsrv");
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Srv(child);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("iwsrv did not come up on port {port}");
}

fn iwstat_json(port: u16) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_iwstat"))
        .arg("--server")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--json")
        .stderr(Stdio::inherit())
        .output()
        .expect("run iwstat");
    assert!(out.status.success(), "iwstat exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8")
}

/// Pulls `"name":value` out of the iwstat JSON dump, if present.
fn json_value(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)?;
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// Polls the backup until its copy of `clu/data` reaches `version`.
fn await_backup_version(version: u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let json = iwstat_json(BACKUP_PORT);
        if json_value(&json, "server.segment.clu/data.version") >= Some(version) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backup never reached version {version}: {json}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn two_node_cluster_survives_primary_death() {
    let primary = spawn_srv(PRIMARY_PORT, &[]);
    let _backup = spawn_srv(
        BACKUP_PORT,
        &[
            "--backup-of".to_string(),
            format!("127.0.0.1:{PRIMARY_PORT}"),
        ],
    );

    // The client speaks to the replica group: primary first, backup next.
    let addrs = [
        format!("127.0.0.1:{PRIMARY_PORT}").parse().unwrap(),
        format!("127.0.0.1:{BACKUP_PORT}").parse().unwrap(),
    ];
    let mut s = Session::new(
        MachineArch::x86(),
        Box::new(iw_proto::TcpTransport::connect(addrs[0]).expect("primary reachable")),
    )
    .unwrap();
    s.add_tcp_server_group("clu", &addrs).unwrap();

    // Version 1: the block; versions 2..=5: distinct values.
    let h = s.open_segment("clu/data").unwrap();
    s.wl_acquire(&h).unwrap();
    let vals = s.malloc(&h, &TypeDesc::int64(), 8, Some("vals")).unwrap();
    s.wl_release(&h).unwrap();
    for round in 0..4u64 {
        s.wl_acquire(&h).unwrap();
        let slot = s.index(&vals, round as u32).unwrap();
        s.write_i64(&slot, 100 + round as i64).unwrap();
        s.wl_release(&h).unwrap();
    }

    // Replication is asynchronous: wait for the backup to catch up, so
    // everything written so far survives the kill.
    await_backup_version(5);
    let primary_stats = iwstat_json(PRIMARY_PORT);
    assert!(
        json_value(&primary_stats, "cluster.diffs_shipped_total") > Some(0),
        "{primary_stats}"
    );
    assert_eq!(
        json_value(&primary_stats, "cluster.backups"),
        Some(1),
        "{primary_stats}"
    );

    // Kill the primary between releases; the next lock round trip hits a
    // dead socket and must fail over transparently.
    drop(primary);
    for round in 4..6u64 {
        s.wl_acquire(&h).unwrap();
        let slot = s.index(&vals, round as u32).unwrap();
        s.write_i64(&slot, 100 + round as i64).unwrap();
        s.wl_release(&h).unwrap();
    }
    assert_eq!(
        s.metrics_snapshot().counter("client.failovers_total"),
        Some(1)
    );

    // A fresh reader bound to the backup alone sees every write: the
    // replicated pre-kill versions and the failed-over post-kill ones.
    let mut r = Session::new(
        MachineArch::alpha(),
        Box::new(iw_proto::TcpTransport::connect(addrs[1]).unwrap()),
    )
    .unwrap();
    let hr = r.open_segment("clu/data").unwrap();
    r.rl_acquire(&hr).unwrap();
    let rv = r.mip_to_ptr("clu/data#vals").unwrap();
    for round in 0..6u64 {
        let slot = r.index(&rv, round as u32).unwrap();
        assert_eq!(r.read_i64(&slot).unwrap(), 100 + round as i64);
    }
    r.rl_release(&hr).unwrap();

    // The backup's own registry shows the replication and the failover.
    let backup_stats = iwstat_json(BACKUP_PORT);
    assert!(
        json_value(&backup_stats, "cluster.diffs_applied_total") > Some(0),
        "{backup_stats}"
    );
    assert!(
        json_value(&backup_stats, "cluster.failovers_total") >= Some(1),
        "{backup_stats}"
    );
}
