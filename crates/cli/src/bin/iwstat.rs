//! `iwstat` — scrapes a live `iwsrv` and prints its metrics.
//!
//! ```text
//! iwstat [--server 127.0.0.1:7474] [--json | --prom] [--filter PREFIX]
//! ```
//!
//! Connects over TCP, performs the Hello handshake, sends a `Stats`
//! request, and renders the server's metrics snapshot: human-readable
//! text by default, JSON with `--json`, Prometheus text exposition with
//! `--prom`. `--filter` keeps only metrics whose name starts with the
//! given prefix (e.g. `server.lock.`).

use iw_cli::Args;
use iw_proto::{Reply, Request, TcpTransport, Transport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let addr = args.flag("server").unwrap_or("127.0.0.1:7474");

    let mut transport = TcpTransport::connect(addr.parse()?)?;
    let client = match transport.request(&Request::Hello {
        info: "iwstat scraper".into(),
    })? {
        Reply::Welcome { client, .. } => client,
        other => return Err(format!("unexpected reply to Hello: {other:?}").into()),
    };
    let mut snapshot = match transport.request(&Request::Stats { client })? {
        Reply::Stats { snapshot } => snapshot,
        other => return Err(format!("unexpected reply to Stats: {other:?}").into()),
    };

    if let Some(prefix) = args.flag("filter") {
        snapshot.counters.retain(|(n, _)| n.starts_with(prefix));
        snapshot.gauges.retain(|(n, _)| n.starts_with(prefix));
        snapshot.histograms.retain(|(n, _)| n.starts_with(prefix));
    }

    if args.switch("json") {
        println!("{}", snapshot.to_json());
    } else if args.switch("prom") {
        print!("{}", snapshot.render_prometheus());
    } else {
        print!("{}", snapshot.render_text());
    }
    Ok(())
}
