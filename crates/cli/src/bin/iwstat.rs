//! `iwstat` — scrapes a live `iwsrv` and prints its metrics.
//!
//! ```text
//! iwstat [--server 127.0.0.1:7474] [--json | --prom] [--filter PREFIX] [--probe]
//! ```
//!
//! Connects over TCP, performs the Hello handshake, sends a `Stats`
//! request, and renders the server's metrics snapshot: human-readable
//! text by default, JSON with `--json`, Prometheus text exposition with
//! `--prom`. `--filter` keeps only metrics whose name starts with the
//! given prefix (e.g. `server.lock.`).
//!
//! `--probe` additionally drives a small writer/reader workload against
//! the server from this process and merges the client library's own
//! counters (`client.*`) into the scrape. The probe runs as a simulated
//! big-endian machine so the isomorphic-layout fast path engages, making
//! `client.translate.iso_collects_total`, `iso_applies_total`, and
//! `iso_memcpy_bytes_total` observable from the command line — the
//! client registry is in-process state and is invisible to a plain
//! server scrape.

use std::net::SocketAddr;

use iw_cli::Args;
use iw_core::Session;
use iw_proto::{Reply, Request, TcpTransport, Transport};
use iw_telemetry::Snapshot;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

/// Adds `extra`'s metrics into `acc`, summing counters that share a
/// name (the probe's writer and reader sessions each carry a full
/// client registry).
fn sum_into(acc: &mut Snapshot, extra: Snapshot) {
    for (n, v) in extra.counters {
        match acc.counters.iter_mut().find(|(an, _)| *an == n) {
            Some(e) => e.1 += v,
            None => acc.counters.push((n, v)),
        }
    }
    for (n, v) in extra.gauges {
        match acc.gauges.iter_mut().find(|(an, _)| *an == n) {
            Some(e) => e.1 += v,
            None => acc.gauges.push((n, v)),
        }
    }
    for (n, h) in extra.histograms {
        if !acc.histograms.iter().any(|(an, _)| *an == n) {
            acc.histograms.push((n, h));
        }
    }
}

/// Writer/reader round trip against `addr` on a simulated big-endian
/// machine; returns the merged client-side metrics of both sessions.
fn run_probe(addr: SocketAddr) -> Result<Snapshot, Box<dyn std::error::Error>> {
    let arch = MachineArch::sparc_v9();
    let mut w = Session::new(arch.clone(), Box::new(TcpTransport::connect(addr)?))?;
    let h = w.open_segment("iwstat/probe")?;
    w.wl_acquire(&h)?;
    // Reuse the block when a previous probe already created it.
    let blk = match w.mip_to_ptr("iwstat/probe#blk") {
        Ok(p) => p,
        Err(_) => w.malloc(&h, &TypeDesc::int32(), 4096, Some("blk"))?,
    };
    // Salt the values so repeated probes against the same server still
    // dirty the block (identical bytes would yield an empty diff).
    let salt = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as i32 | 1)
        .unwrap_or(1);
    for i in 0..4096 {
        w.write_i32(&w.index(&blk, i)?, (i as i32) ^ salt)?;
    }
    w.wl_release(&h)?;

    let mut r = Session::new(arch, Box::new(TcpTransport::connect(addr)?))?;
    let rh = r.open_segment("iwstat/probe")?;
    r.rl_acquire(&rh)?;
    let q = r.mip_to_ptr("iwstat/probe#blk")?;
    let last = r.read_i32(&r.index(&q, 4095)?)?;
    if last != 4095 ^ salt {
        return Err(format!("probe read back {last}, expected {}", 4095 ^ salt).into());
    }
    r.rl_release(&rh)?;

    let mut merged = w.metrics_snapshot();
    sum_into(&mut merged, r.metrics_snapshot());
    Ok(merged)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let addr = args.flag("server").unwrap_or("127.0.0.1:7474");

    let probe = if args.switch("probe") {
        Some(run_probe(addr.parse()?)?)
    } else {
        None
    };

    let mut transport = TcpTransport::connect(addr.parse()?)?;
    let client = match transport.request(&Request::Hello {
        info: "iwstat scraper".into(),
    })? {
        Reply::Welcome { client, .. } => client,
        other => return Err(format!("unexpected reply to Hello: {other:?}").into()),
    };
    let mut snapshot = match transport.request(&Request::Stats { client })? {
        Reply::Stats { snapshot } => snapshot,
        other => return Err(format!("unexpected reply to Stats: {other:?}").into()),
    };

    if let Some(p) = probe {
        // Client metric names are already namespaced (`client.*`,
        // `proto.*`); merge them alongside the server's sections.
        snapshot.merge_prefixed("", p);
    }

    if let Some(prefix) = args.flag("filter") {
        snapshot.counters.retain(|(n, _)| n.starts_with(prefix));
        snapshot.gauges.retain(|(n, _)| n.starts_with(prefix));
        snapshot.histograms.retain(|(n, _)| n.starts_with(prefix));
    }

    if args.switch("json") {
        println!("{}", snapshot.to_json());
    } else if args.switch("prom") {
        print!("{}", snapshot.render_prometheus());
    } else {
        print!("{}", snapshot.render_text());
        print_wire_summary(&snapshot);
    }
    Ok(())
}

/// Derived wire-compaction lines for the human-readable view: the raw
/// counters travel in the snapshot, but the ratio is what an operator
/// actually wants to read.
fn print_wire_summary(s: &Snapshot) {
    let counter = |name: &str| {
        s.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let raw = counter("wire.diff_bytes_raw_total");
    let sent = counter("wire.diff_bytes_sent_total");
    if raw > 0 {
        println!(
            "# wire: diff payload {raw} B raw -> {sent} B sent ({:.1}% saved)",
            100.0 * (1.0 - sent as f64 / raw as f64)
        );
    }
    let hits = counter("server.enc_cache.hits_total");
    let misses = counter("server.enc_cache.misses_total");
    if hits + misses > 0 {
        println!(
            "# wire: encode cache {hits} hits / {misses} misses ({:.1}% served pre-encoded)",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
}
