//! `iwsrv` — a standalone InterWeave server over TCP.
//!
//! ```text
//! iwsrv [--listen 127.0.0.1:7474] [--data-dir DIR] [--durability MODE]
//!       [--checkpoint-dir DIR] [--checkpoint-every N] [--recover]
//!       [--backup-of ADDR] [--chaos SEED] [--chaos-rate PER_10K]
//!       [--port-file PATH] [--frontend event|threads] [--workers N]
//!       [--max-conns N] [--idle-timeout SECS] [--poller epoll|poll]
//! ```
//!
//! `--frontend` picks the connection front end: `event` (the default) is
//! the readiness-polled event loop (`iw-net`) — one loop thread, a
//! bounded worker pool (`--workers`, default 4), admission control at
//! `--max-conns` (default 4096, beyond which connections get a typed
//! `Overloaded` reply), and idle-connection reaping (`--idle-timeout`,
//! default 300 s, 0 disables). `threads` is the classic
//! thread-per-connection loop. `--poller` forces the readiness backend
//! (default: epoll on Linux, poll elsewhere).
//!
//! With `--data-dir`, the server runs on the durable diff store
//! (`iw-durable`): committed diffs are WAL-logged and fsynced before the
//! release is acknowledged, checkpoint images bound the log, and a
//! restart with the same `--data-dir` recovers everything — including a
//! `kill -9` mid-commit (torn tail truncated). `--durability` picks the
//! mode (`wal` or the default `wal+checkpoint`); `--checkpoint-every`
//! doubles as the durable checkpoint interval.
//!
//! With the legacy `--checkpoint-dir`, every segment is checkpointed
//! every N versions (default 8); with `--recover`, segments found in the
//! directory are restored before serving — the paper's "partial
//! protection against server failure" (§2.2) without the WAL.
//!
//! `--port-file PATH` writes the actual bound address (useful with
//! `--listen 127.0.0.1:0`) to PATH once serving — the handshake the
//! kill/restart harness uses to find an ephemeral port.
//!
//! Every `iwsrv` is replication-capable: it accepts `AttachBackup`
//! requests and streams committed diffs to attached backups. With
//! `--backup-of ADDR`, this instance instead serves the *read-replica*
//! face: it registers itself as a backup of the primary at `ADDR`
//! (retrying until the primary is reachable) and follows its diff
//! stream, answers floored read polls locally whenever its copy
//! satisfies the client's staleness floor (`NotFresh` otherwise), and
//! bounces every write-shaped request with a `NotPrimary` redirect
//! naming the primary. The face is promotable: the first
//! failover-marked `Hello` (a client that lost the primary
//! re-registering) permanently flips the node to its full primary
//! face, so kill-the-primary failover keeps working with the
//! replica face in front.
//!
//! With `--chaos SEED`, a deterministic fault injector sits between the
//! wire and the server: a seeded fraction of requests (default 200 per
//! 10 000, tune with `--chaos-rate`) is dropped, truncated, duplicated,
//! or delayed before dispatch. The injected faults are the *recoverable*
//! class (no corruption), so well-behaved clients retry through them;
//! `faults.injected_total` counters land in the registry `iwstat`
//! scrapes.

use std::path::PathBuf;
use std::sync::Arc;

use iw_cli::Args;
use iw_cluster::{Backup, Primary};
use iw_faults::{FaultLog, FaultPlan, FaultyHandler};
use iw_net::{NetOptions, NetServer, PollerKind};
use iw_proto::{Handler, Reply, Request, TcpServer, TcpTransport, Transport};
use iw_server::{DurabilityMode, DurableOptions, Server};

/// Either running front end; both serve the same handler and registry.
enum FrontEnd {
    Event(NetServer),
    Threads(TcpServer),
}

impl FrontEnd {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            FrontEnd::Event(s) => s.addr(),
            FrontEnd::Threads(s) => s.addr(),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let listen = args.flag("listen").unwrap_or("127.0.0.1:7474");
    let every: u64 = args
        .flag("checkpoint-every")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(8);

    let server = if let Some(dir) = args.flag("data-dir") {
        let mode = match args.flag("durability") {
            Some(m) => DurabilityMode::parse(m)
                .ok_or_else(|| format!("unknown --durability mode `{m}`"))?,
            None => DurabilityMode::WalCheckpoint,
        };
        let opts = DurableOptions {
            mode,
            checkpoint_interval: every.max(1),
            ..DurableOptions::default()
        };
        let (s, recovery) = Server::with_durability(PathBuf::from(dir), opts)?;
        for w in &recovery.warnings {
            eprintln!("iwsrv: recovery warning: {w}");
        }
        eprintln!(
            "iwsrv: durable store at {dir} (mode {mode}): {} segments recovered, {} records replayed",
            recovery.segments.len(),
            recovery.replayed_records
        );
        s
    } else {
        match args.flag("checkpoint-dir") {
            Some(dir) if args.switch("recover") => {
                let s = Server::recover(PathBuf::from(dir), every)?;
                eprintln!("iwsrv: recovered checkpoints from {dir}");
                s
            }
            Some(dir) => Server::with_checkpointing(PathBuf::from(dir), every),
            None => Server::new(),
        }
    };
    let registry = server.registry().clone();
    let backup_of: Option<std::net::SocketAddr> =
        args.flag("backup-of").map(|v| v.parse()).transpose()?;
    // A `--backup-of` node serves the read-replica face: floored read
    // polls answered locally, writes bounced toward the primary. The
    // diff/sync stream from the primary passes through `Backup` to the
    // same underlying server. The face is *promotable*: the wrapped
    // `Primary` handler takes over on the first failover-marked
    // `Hello`, restoring full write + replication capability once the
    // primary is gone.
    let core: Arc<dyn Handler> = match backup_of {
        Some(primary) => {
            let full = Primary::new(server);
            let srv = full.server().clone();
            Arc::new(Backup::promotable(
                Arc::new(full),
                srv,
                Some(primary.to_string()),
            ))
        }
        None => Arc::new(Primary::new(server)),
    };
    let handler: Arc<dyn Handler> = match args.flag("chaos") {
        Some(seed) => {
            let seed: u64 = seed.parse()?;
            let rate: u32 = args
                .flag("chaos-rate")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(200);
            let faulty =
                FaultyHandler::new(core, seed, FaultPlan::recoverable(rate), FaultLog::new());
            faulty.bind_registry(&registry);
            eprintln!("iwsrv: chaos ingress enabled (seed {seed}, {rate}/10k)");
            Arc::new(faulty)
        }
        None => core,
    };
    let frontend = args.flag("frontend").unwrap_or("event");
    let tcp = match frontend {
        "threads" => FrontEnd::Threads(TcpServer::spawn_with_registry(
            listen.parse()?,
            handler,
            &registry,
        )?),
        "event" => {
            let workers: usize = args
                .flag("workers")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(4);
            let max_connections: usize = args
                .flag("max-conns")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(4096);
            let idle_secs: u64 = args
                .flag("idle-timeout")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(300);
            let poller = match args.flag("poller") {
                Some(p) => PollerKind::parse(p).ok_or_else(|| format!("unknown --poller `{p}`"))?,
                None => PollerKind::default_for_platform(),
            };
            let opts = NetOptions {
                workers: workers.max(1),
                max_connections,
                idle_timeout: (idle_secs > 0).then(|| std::time::Duration::from_secs(idle_secs)),
                poller,
                ..NetOptions::default()
            };
            eprintln!(
                "iwsrv: event front end ({poller}, {} workers, {max_connections} conns max)",
                opts.workers
            );
            FrontEnd::Event(NetServer::spawn_with(
                listen.parse()?,
                handler,
                opts,
                &registry,
            )?)
        }
        other => return Err(format!("unknown --frontend `{other}`").into()),
    };
    eprintln!("iwsrv: serving on {}", tcp.addr());
    if let Some(path) = args.flag("port-file") {
        // tmp+rename so a poller never reads a half-written address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, tcp.addr().to_string())?;
        std::fs::rename(&tmp, path)?;
    }

    if let Some(primary) = backup_of {
        let own = tcp.addr().to_string();
        std::thread::spawn(move || loop {
            if let Ok(mut t) = TcpTransport::connect(primary) {
                let attach = Request::AttachBackup { addr: own.clone() };
                if matches!(t.request(&attach), Ok(Reply::Replicated { .. })) {
                    eprintln!("iwsrv: attached as backup of {primary}");
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        });
    }

    eprintln!("iwsrv: press ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
