//! `iwsrv` — a standalone InterWeave server over TCP.
//!
//! ```text
//! iwsrv [--listen 127.0.0.1:7474] [--checkpoint-dir DIR]
//!       [--checkpoint-every N] [--recover] [--backup-of ADDR]
//!       [--chaos SEED] [--chaos-rate PER_10K]
//! ```
//!
//! With `--checkpoint-dir`, every segment is checkpointed every N
//! versions (default 8); with `--recover`, segments found in the
//! directory are restored before serving — the paper's "partial
//! protection against server failure" (§2.2).
//!
//! Every `iwsrv` is replication-capable: it accepts `AttachBackup`
//! requests and streams committed diffs to attached backups. With
//! `--backup-of ADDR`, this instance additionally registers itself as a
//! backup of the primary at `ADDR` (retrying until the primary is
//! reachable), after which the primary keeps it bit-identical via the
//! diff stream plus full-image catch-up.
//!
//! With `--chaos SEED`, a deterministic fault injector sits between the
//! wire and the server: a seeded fraction of requests (default 200 per
//! 10 000, tune with `--chaos-rate`) is dropped, truncated, duplicated,
//! or delayed before dispatch. The injected faults are the *recoverable*
//! class (no corruption), so well-behaved clients retry through them;
//! `faults.injected_total` counters land in the registry `iwstat`
//! scrapes.

use std::path::PathBuf;
use std::sync::Arc;

use iw_cli::Args;
use iw_cluster::Primary;
use iw_faults::{FaultLog, FaultPlan, FaultyHandler};
use iw_proto::{Handler, Reply, Request, TcpServer, TcpTransport, Transport};
use iw_server::Server;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let listen = args.flag("listen").unwrap_or("127.0.0.1:7474");
    let every: u64 = args
        .flag("checkpoint-every")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(8);

    let server = match args.flag("checkpoint-dir") {
        Some(dir) if args.switch("recover") => {
            let s = Server::recover(PathBuf::from(dir), every)?;
            eprintln!("iwsrv: recovered checkpoints from {dir}");
            s
        }
        Some(dir) => Server::with_checkpointing(PathBuf::from(dir), every),
        None => Server::new(),
    };
    let primary = Primary::new(server);
    let registry = primary.server().registry().clone();
    let handler: Arc<dyn Handler> = match args.flag("chaos") {
        Some(seed) => {
            let seed: u64 = seed.parse()?;
            let rate: u32 = args
                .flag("chaos-rate")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(200);
            let faulty = FaultyHandler::new(
                Arc::new(primary),
                seed,
                FaultPlan::recoverable(rate),
                FaultLog::new(),
            );
            faulty.bind_registry(&registry);
            eprintln!("iwsrv: chaos ingress enabled (seed {seed}, {rate}/10k)");
            Arc::new(faulty)
        }
        None => Arc::new(primary),
    };
    let tcp = TcpServer::spawn_with_registry(listen.parse()?, handler, &registry)?;
    eprintln!("iwsrv: serving on {}", tcp.addr());

    if let Some(primary) = args.flag("backup-of") {
        let primary: std::net::SocketAddr = primary.parse()?;
        let own = tcp.addr().to_string();
        std::thread::spawn(move || loop {
            if let Ok(mut t) = TcpTransport::connect(primary) {
                let attach = Request::AttachBackup { addr: own.clone() };
                if matches!(t.request(&attach), Ok(Reply::Replicated { .. })) {
                    eprintln!("iwsrv: attached as backup of {primary}");
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        });
    }

    eprintln!("iwsrv: press ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
