//! `iwsrv` — a standalone InterWeave server over TCP.
//!
//! ```text
//! iwsrv [--listen 127.0.0.1:7474] [--checkpoint-dir DIR]
//!       [--checkpoint-every N] [--recover]
//! ```
//!
//! With `--checkpoint-dir`, every segment is checkpointed every N
//! versions (default 8); with `--recover`, segments found in the
//! directory are restored before serving — the paper's "partial
//! protection against server failure" (§2.2).

use std::path::PathBuf;
use std::sync::Arc;

use iw_cli::Args;
use iw_proto::{Handler, TcpServer};
use iw_server::Server;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let listen = args.flag("listen").unwrap_or("127.0.0.1:7474");
    let every: u64 = args
        .flag("checkpoint-every")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(8);

    let server = match args.flag("checkpoint-dir") {
        Some(dir) if args.switch("recover") => {
            let s = Server::recover(PathBuf::from(dir), every)?;
            eprintln!("iwsrv: recovered checkpoints from {dir}");
            s
        }
        Some(dir) => Server::with_checkpointing(PathBuf::from(dir), every),
        None => Server::new(),
    };
    let handler: Arc<Mutex<dyn Handler>> = Arc::new(Mutex::new(server));
    let tcp = TcpServer::spawn(listen.parse()?, handler)?;
    eprintln!("iwsrv: serving on {}", tcp.addr());
    eprintln!("iwsrv: press ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
