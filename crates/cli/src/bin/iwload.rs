//! `iwload` — many-client scale harness.
//!
//! ```text
//! iwload --addr 127.0.0.1:7474 [--sessions N | --curve N1,N2,...]
//!        [--rounds R] [--drivers D] [--reconnect-every K]
//!        [--timeout SECS] [--chaos] [--expect-busy N]
//! ```
//!
//! Drives `N` concurrent live sessions (one TCP connection each, a
//! private segment each) through `R` acquire-write-release rounds and
//! verifies every segment's final version and content. With `--curve`,
//! runs one point per session count and prints a
//! connections-vs-throughput table. With `--expect-busy N`, opens `N`
//! simultaneous connections instead and checks the admission contract:
//! every connection gets a typed answer (`Welcome` or `Overloaded`),
//! never a hang or a reset.
//!
//! Exit status is nonzero on any session error, verification
//! divergence, or admission-contract violation.

use std::net::SocketAddr;
use std::time::Duration;

use iw_cli::load::{admission_check, run, LoadConfig};
use iw_cli::Args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let addr: SocketAddr = args.flag("addr").unwrap_or("127.0.0.1:7474").parse()?;
    let timeout = Duration::from_secs(
        args.flag("timeout")
            .map(|v| v.parse())
            .transpose()?
            .unwrap_or(10u64),
    );

    if let Some(n) = args.flag("expect-busy") {
        let attempts: usize = n.parse()?;
        let report = admission_check(addr, attempts, timeout);
        println!(
            "admission: {} attempts, {} welcomed, {} overloaded, {} errors",
            attempts,
            report.welcomed,
            report.overloaded,
            report.errors.len()
        );
        for e in report.errors.iter().take(10) {
            eprintln!("iwload: admission error: {e}");
        }
        if !report.errors.is_empty() {
            return Err("admission contract violated: untyped failures".into());
        }
        if report.overloaded == 0 {
            return Err("admission check expected at least one Overloaded".into());
        }
        if report.welcomed + report.overloaded != attempts {
            return Err("admission check lost connections".into());
        }
        return Ok(());
    }

    let rounds: u64 = args
        .flag("rounds")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(10);
    let drivers: usize = args
        .flag("drivers")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(16);
    let reconnect_every: u64 = args
        .flag("reconnect-every")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0);
    let chaos = args.switch("chaos");

    let points: Vec<usize> = match args.flag("curve") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse())
            .collect::<Result<_, _>>()?,
        None => vec![args
            .flag("sessions")
            .map(|v| v.parse())
            .transpose()?
            .unwrap_or(100)],
    };

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>10} {:>7}",
        "sessions", "rounds", "elapsed_s", "commits", "commits/s", "reconnects", "errors"
    );
    let mut failed = false;
    for (point, sessions) in points.into_iter().enumerate() {
        let config = LoadConfig {
            addr,
            sessions,
            rounds,
            drivers,
            reconnect_every,
            io_timeout: timeout,
            chaos,
            // Namespace by invocation (pid) and curve point: a later
            // point — or a later `iwload` run against the same server —
            // must never inherit versions or stray locks from an
            // earlier one's segments.
            segment_prefix: format!("load-{}-p{point}", std::process::id()),
        };
        let report = run(&config);
        println!(
            "{:>10} {:>8} {:>10.2} {:>12} {:>12.0} {:>10} {:>7}",
            sessions,
            rounds,
            report.elapsed.as_secs_f64(),
            report.committed_rounds,
            report.throughput,
            report.reconnects,
            report.errors.len()
        );
        for e in report.errors.iter().take(10) {
            eprintln!("iwload: {e}");
        }
        if report.errors.len() > 10 {
            eprintln!("iwload: ... and {} more errors", report.errors.len() - 10);
        }
        if !report.passed() || report.completed_sessions != sessions {
            failed = true;
        }
    }
    if failed {
        return Err("load run had session errors or divergence".into());
    }
    Ok(())
}
