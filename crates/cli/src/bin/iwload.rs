//! `iwload` — many-client scale harness.
//!
//! ```text
//! iwload --addr 127.0.0.1:7474 [--sessions N | --curve N1,N2,...]
//!        [--rounds R] [--drivers D] [--reconnect-every K]
//!        [--timeout SECS] [--chaos] [--expect-busy N]
//!        [--readers N [--reads R] [--writes W] [--window-ms MS]
//!         [--replicas A1,A2,...|none] [--min-share PCT]]
//! ```
//!
//! Drives `N` concurrent live sessions (one TCP connection each, a
//! private segment each) through `R` acquire-write-release rounds and
//! verifies every segment's final version and content. With `--curve`,
//! runs one point per session count and prints a
//! connections-vs-throughput table. With `--expect-busy N`, opens `N`
//! simultaneous connections instead and checks the admission contract:
//! every connection gets a typed answer (`Welcome` or `Overloaded`),
//! never a hang or a reset.
//!
//! With `--readers N`, the read-fan-out harness runs instead: one
//! writer streams versions through the primary at `--addr` while `N`
//! reader sessions under `Temporal(--window-ms)` coherence pull the
//! shared segment through the replica fan-out path. Replicas come from
//! the primary's advertised set by default; `--replicas A1,A2` pins an
//! explicit list, `--replicas none` measures the no-replica baseline.
//! The harness waits for the backups to catch up before measuring,
//! checks the `value == version` oracle on every read, and fails if
//! any staleness bound broke or (with replicas) the replica-served
//! share of network reads lands below `--min-share` (default 80).
//!
//! Exit status is nonzero on any session error, verification
//! divergence, or admission-contract violation.

use std::net::SocketAddr;
use std::time::Duration;

use iw_cli::fanout::{await_replicas, run_fanout, FanoutConfig};
use iw_cli::load::{admission_check, run, LoadConfig};
use iw_cli::Args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let addr: SocketAddr = args.flag("addr").unwrap_or("127.0.0.1:7474").parse()?;
    let timeout = Duration::from_secs(
        args.flag("timeout")
            .map(|v| v.parse())
            .transpose()?
            .unwrap_or(10u64),
    );

    if let Some(n) = args.flag("expect-busy") {
        let attempts: usize = n.parse()?;
        let report = admission_check(addr, attempts, timeout);
        println!(
            "admission: {} attempts, {} welcomed, {} overloaded, {} errors",
            attempts,
            report.welcomed,
            report.overloaded,
            report.errors.len()
        );
        for e in report.errors.iter().take(10) {
            eprintln!("iwload: admission error: {e}");
        }
        if !report.errors.is_empty() {
            return Err("admission contract violated: untyped failures".into());
        }
        if report.overloaded == 0 {
            return Err("admission check expected at least one Overloaded".into());
        }
        if report.welcomed + report.overloaded != attempts {
            return Err("admission check lost connections".into());
        }
        return Ok(());
    }

    if let Some(n) = args.flag("readers") {
        let mut cfg = FanoutConfig::smoke(addr);
        cfg.readers = n.parse()?;
        if let Some(v) = args.flag("reads") {
            cfg.reads_per_reader = v.parse()?;
        }
        if let Some(v) = args.flag("writes") {
            cfg.writes = v.parse()?;
        }
        if let Some(v) = args.flag("window-ms") {
            cfg.window = Duration::from_millis(v.parse()?);
        }
        if let Some(v) = args.flag("drivers") {
            cfg.drivers = v.parse()?;
        }
        match args.flag("replicas") {
            Some("none") => cfg.discover = false,
            Some(list) => {
                cfg.discover = false;
                cfg.replicas = list
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()?;
            }
            None => {}
        }
        let min_share: f64 = args
            .flag("min-share")
            .map(|v| v.parse::<f64>())
            .transpose()?
            .unwrap_or(80.0)
            / 100.0;

        let expect_replicas = cfg.discover || !cfg.replicas.is_empty();
        if expect_replicas && !await_replicas(&cfg, timeout) {
            return Err("no backup answered a floored probe read before the timeout".into());
        }
        let report = run_fanout(&cfg);
        println!(
            "fanout: {} readers x {} reads, {} writes, window {}ms, {} replicas attached",
            cfg.readers,
            cfg.reads_per_reader,
            cfg.writes,
            cfg.window.as_millis(),
            report.replicas_attached,
        );
        if report.replicas_attached == 0 {
            println!(
                "fanout: {} reads in {:.2}s ({:.0}/s): all primary/local (no replica pool)",
                report.reads,
                report.elapsed.as_secs_f64(),
                report.reads_per_sec,
            );
        } else {
            println!(
                "fanout: {} reads in {:.2}s ({:.0}/s): {} local, {} replica-served, \
                 {} primary fallbacks ({:.1}% replica share of network reads)",
                report.reads,
                report.elapsed.as_secs_f64(),
                report.reads_per_sec,
                report.local_reads,
                report.replica_reads,
                report.fallbacks,
                report.replica_share() * 100.0,
            );
        }
        println!(
            "fanout: {} not-fresh refusals, {} frontier probes, {} violations, final version {}",
            report.not_fresh, report.frontier_probes, report.violations, report.final_version,
        );
        println!(
            "fanout: {} wire bytes across readers ({:.1} KB/s)",
            report.wire_bytes,
            report.wire_bytes_per_sec / 1024.0,
        );
        for e in report.errors.iter().take(10) {
            eprintln!("iwload: {e}");
        }
        if report.errors.len() > 10 {
            eprintln!("iwload: ... and {} more errors", report.errors.len() - 10);
        }
        if !report.passed() {
            return Err("fan-out run had oracle failures or staleness violations".into());
        }
        if expect_replicas && report.replica_reads == 0 {
            return Err("fan-out run never used a replica despite replicas being expected".into());
        }
        if expect_replicas && report.replica_share() < min_share {
            return Err(format!(
                "replica share {:.1}% below the {:.0}% floor",
                report.replica_share() * 100.0,
                min_share * 100.0
            )
            .into());
        }
        return Ok(());
    }

    let rounds: u64 = args
        .flag("rounds")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(10);
    let drivers: usize = args
        .flag("drivers")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(16);
    let reconnect_every: u64 = args
        .flag("reconnect-every")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0);
    let chaos = args.switch("chaos");

    let points: Vec<usize> = match args.flag("curve") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse())
            .collect::<Result<_, _>>()?,
        None => vec![args
            .flag("sessions")
            .map(|v| v.parse())
            .transpose()?
            .unwrap_or(100)],
    };

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7}",
        "sessions",
        "rounds",
        "elapsed_s",
        "commits",
        "commits/s",
        "wire_KB/s",
        "reconnects",
        "errors"
    );
    let mut failed = false;
    for (point, sessions) in points.into_iter().enumerate() {
        let config = LoadConfig {
            addr,
            sessions,
            rounds,
            drivers,
            reconnect_every,
            io_timeout: timeout,
            chaos,
            // Namespace by invocation (pid) and curve point: a later
            // point — or a later `iwload` run against the same server —
            // must never inherit versions or stray locks from an
            // earlier one's segments.
            segment_prefix: format!("load-{}-p{point}", std::process::id()),
        };
        let report = run(&config);
        println!(
            "{:>10} {:>8} {:>10.2} {:>12} {:>12.0} {:>12.1} {:>10} {:>7}",
            sessions,
            rounds,
            report.elapsed.as_secs_f64(),
            report.committed_rounds,
            report.throughput,
            report.wire_bytes_per_sec / 1024.0,
            report.reconnects,
            report.errors.len()
        );
        for e in report.errors.iter().take(10) {
            eprintln!("iwload: {e}");
        }
        if report.errors.len() > 10 {
            eprintln!("iwload: ... and {} more errors", report.errors.len() - 10);
        }
        if !report.passed() || report.completed_sessions != sessions {
            failed = true;
        }
    }
    if failed {
        return Err("load run had session errors or divergence".into());
    }
    Ok(())
}
