//! `iwdump` — inspect a segment on a running InterWeave server.
//!
//! ```text
//! iwdump --server 127.0.0.1:7474 host/segment [--values N]
//! ```
//!
//! Fetches the segment (read-only) and prints each block's serial, name,
//! type, element count, and up to N leading primitive values (default 8).

use iw_cli::Args;
use iw_core::Session;
use iw_proto::TcpTransport;
use iw_types::desc::PrimKind;
use iw_types::MachineArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let Some(segment) = args.positional(0) else {
        eprintln!("usage: iwdump --server HOST:PORT host/segment [--values N]");
        std::process::exit(2);
    };
    let server = args.flag("server").unwrap_or("127.0.0.1:7474");
    let values: u64 = args
        .flag("values")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(8);

    let mut s = Session::new(
        MachineArch::x86_64(),
        Box::new(TcpTransport::connect(server.parse()?)?),
    )?;
    let h = s.open_segment(segment)?;
    s.rl_acquire(&h)?;

    let seg_id = s.heap().segment_id(segment).expect("opened");
    let blocks: Vec<(u32, Option<String>, String, u32, u64)> = s
        .heap()
        .segment(seg_id)
        .blocks()
        .map(|b| {
            (
                b.serial,
                b.name.clone(),
                b.ty.to_string(),
                b.count,
                b.prim_count(),
            )
        })
        .collect();

    println!("segment {segment}: {} blocks", blocks.len());
    for (serial, name, ty, count, prims) in blocks {
        let label = name.clone().unwrap_or_else(|| format!("#{serial}"));
        println!("  block {serial:<5} {label:<16} {ty} ×{count} ({prims} prims)");
        let block_ref = name.unwrap_or_else(|| serial.to_string());
        for off in 0..prims.min(values) {
            let mip = format!("{segment}#{block_ref}#{off}");
            let p = s.mip_to_ptr(&mip)?;
            let kind = s.kind_at(&p)?;
            let rendered = match kind {
                PrimKind::Char => format!("{:?}", s.read_char(&p)? as char),
                PrimKind::Int16 => s.read_i16(&p)?.to_string(),
                PrimKind::Int32 => s.read_i32(&p)?.to_string(),
                PrimKind::Int64 => s.read_i64(&p)?.to_string(),
                PrimKind::Float32 => s.read_f32(&p)?.to_string(),
                PrimKind::Float64 => s.read_f64(&p)?.to_string(),
                PrimKind::Str { .. } => format!("{:?}", s.read_str(&p)?),
                PrimKind::Ptr => match s.read_ptr(&p) {
                    Ok(Some(t)) => format!("-> {}", s.ptr_to_mip(&t)?),
                    Ok(None) => "null".into(),
                    Err(_) => "<unresolved>".into(),
                },
            };
            println!("      [{off}] {rendered}");
        }
        if prims > values {
            println!("      … {} more", prims - values);
        }
    }
    s.rl_release(&h)?;
    Ok(())
}
