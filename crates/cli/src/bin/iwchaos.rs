//! `iwchaos` — deterministic chaos soak against an in-process
//! primary/backup pair.
//!
//! ```text
//! iwchaos [--seed S] [--clients N] [--ops N] [--rate PER_10K] [--trace]
//! ```
//!
//! Spins up a primary with an attached backup, degrades every client
//! link and the primary→backup ship link with seeded fault injectors,
//! runs `N` concurrent writer sessions, then verifies the end state
//! against the fault-free oracle and the backup byte-for-byte against
//! the primary. Exits 1 when the run does not converge.
//!
//! The same seed always injects the same fault schedule — print it with
//! `--trace` and replay at will (with `--clients 1` the trace is fully
//! deterministic; more clients interleave their streams).

use iw_cli::Args;
use iw_faults::chaos::{run_soak, SoakConfig};
use iw_faults::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let seed: u64 = args
        .flag("seed")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(42);
    let mut cfg = SoakConfig::quick(seed);
    if let Some(v) = args.flag("clients") {
        cfg.clients = v.parse()?;
    }
    if let Some(v) = args.flag("ops") {
        cfg.ops = v.parse()?;
    }
    if let Some(v) = args.flag("rate") {
        let rate: u32 = v.parse()?;
        cfg.client_plan = FaultPlan::recoverable(rate);
        cfg.ship_plan = FaultPlan::recoverable(rate);
    }

    let report = run_soak(&cfg);
    println!(
        "iwchaos: seed {seed}  clients {}  ops {}  injected {}+{} (client+ship)  \
         reconnects {}  final version {}",
        cfg.clients,
        cfg.ops,
        report.client_injections,
        report.ship_injections,
        report.client_reconnects,
        report.final_version,
    );
    if args.switch("trace") {
        println!("client trace: {}", report.client_trace);
        println!("ship trace: {}", report.ship_trace);
    }
    for f in &report.failures {
        eprintln!("iwchaos: FAIL {f}");
    }
    if !report.backup_identical {
        eprintln!("iwchaos: FAIL backup diverged from primary after faults stopped");
    }
    if report.converged && report.backup_identical {
        println!(
            "iwchaos: converged — all {} slots match the fault-free oracle, backup identical",
            cfg.clients
        );
        Ok(())
    } else {
        eprintln!("iwchaos: NOT CONVERGED (seed {seed})");
        std::process::exit(1);
    }
}
