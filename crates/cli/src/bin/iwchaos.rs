//! `iwchaos` — deterministic chaos soak against an in-process
//! primary/backup pair.
//!
//! ```text
//! iwchaos [--seed S] [--clients N] [--ops N] [--rate PER_10K] [--trace]
//!         [--recover] [--replica-reads]
//! ```
//!
//! Spins up a primary with an attached backup, degrades every client
//! link and the primary→backup ship link with seeded fault injectors,
//! runs `N` concurrent writer sessions, then verifies the end state
//! against the fault-free oracle and the backup byte-for-byte against
//! the primary. Exits 1 when the run does not converge.
//!
//! With `--recover`, two durability checks run instead:
//!
//! 1. the same chaos soak on a *durable* primary
//!    (`Server::with_durability`, real fsyncs), after which the data
//!    dir is reopened and the recovered segment must byte-match the
//!    image the primary held at soak end;
//! 2. the process-kill harness: a real `iwsrv --data-dir` child is
//!    SIGKILLed mid-commit at a seeded point, restarted, and its
//!    recovered segment byte-compared against a fault-free oracle.
//!
//! With `--replica-reads`, the replica-read soak runs instead: one
//! writer streams versions through the primary while reader sessions
//! pinned to the backup read under Delta/Temporal coherence and the
//! primary→backup ship link wears the seeded fault plan. The run fails
//! if any read is torn, regresses, or lands below its coherence floor —
//! or if the backup never serves at all.
//!
//! The same seed always injects the same fault schedule — print it with
//! `--trace` and replay at will (with `--clients 1` the trace is fully
//! deterministic; more clients interleave their streams).

use iw_cli::Args;
use iw_faults::chaos::{
    run_replica_soak, run_soak, run_soak_on, soak_segment_image, ReplicaSoakConfig, SoakConfig,
};
use iw_faults::kill::{run_kill_restart, KillConfig};
use iw_faults::FaultPlan;
use iw_server::{DurableOptions, Server};

/// The `--recover` mode: durable soak + reopen compare, then the
/// SIGKILL/restart harness. Returns `Ok(false)` on invariant failure.
fn run_recover(cfg: &SoakConfig, seed: u64) -> Result<bool, Box<dyn std::error::Error>> {
    let mut ok = true;
    let scratch =
        std::env::temp_dir().join(format!("iwchaos-recover-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Check 1: the chaos soak on a durable primary, then reopen.
    let soak_dir = scratch.join("soak");
    let (server, _) = Server::with_durability(soak_dir.clone(), DurableOptions::default())?;
    let report = run_soak_on(cfg, server);
    for f in &report.failures {
        eprintln!("iwchaos: FAIL (durable soak) {f}");
        ok = false;
    }
    let (recovered, rec) = Server::with_durability(soak_dir, DurableOptions::default())?;
    for w in &rec.warnings {
        eprintln!("iwchaos: recovery warning: {w}");
    }
    if soak_segment_image(&recovered) == report.primary_image && report.primary_image.is_some() {
        println!(
            "iwchaos: durable soak recovered byte-identical (v{}, {} records replayed)",
            report.final_version, rec.replayed_records
        );
    } else {
        eprintln!("iwchaos: FAIL reopened data dir does not byte-match the soak-end primary");
        ok = false;
    }
    drop(recovered);

    // Check 2: SIGKILL a real iwsrv mid-commit and restart it.
    let iwsrv = std::env::current_exe()?
        .parent()
        .map(|d| d.join("iwsrv"))
        .filter(|p| p.exists())
        .ok_or("iwsrv binary not found next to iwchaos (build the workspace first)")?;
    let kill_cfg = KillConfig {
        seed,
        rounds: 200,
        iwsrv,
        data_dir: scratch.join("kill"),
    };
    let kr = run_kill_restart(&kill_cfg)?;
    for f in &kr.failures {
        eprintln!("iwchaos: FAIL (kill/restart) {f}");
        ok = false;
    }
    if kr.passed() {
        println!(
            "iwchaos: SIGKILL mid-commit at ack {} → recovered v{} byte-identical \
             ({} records replayed)",
            kr.acked, kr.recovered_version, kr.replayed_records
        );
    }
    if ok {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    Ok(ok)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let seed: u64 = args
        .flag("seed")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(42);
    let mut cfg = SoakConfig::quick(seed);
    if let Some(v) = args.flag("clients") {
        cfg.clients = v.parse()?;
    }
    if let Some(v) = args.flag("ops") {
        cfg.ops = v.parse()?;
    }
    if let Some(v) = args.flag("rate") {
        let rate: u32 = v.parse()?;
        cfg.client_plan = FaultPlan::recoverable(rate);
        cfg.ship_plan = FaultPlan::recoverable(rate);
    }

    if args.switch("replica-reads") {
        let mut rcfg = ReplicaSoakConfig::quick(seed);
        if let Some(v) = args.flag("clients") {
            rcfg.readers = v.parse()?;
        }
        if let Some(v) = args.flag("ops") {
            rcfg.writes = v.parse()?;
        }
        if let Some(v) = args.flag("rate") {
            rcfg.ship_plan = FaultPlan::recoverable(v.parse()?);
        }
        let report = run_replica_soak(&rcfg);
        println!(
            "iwchaos: replica-reads seed {seed}  readers {}  writes {}  ship injected {}  \
             replica reads {}  fallbacks {}  not-fresh {}  violations {}  final version {}",
            rcfg.readers,
            rcfg.writes,
            report.ship_injections,
            report.replica_reads,
            report.replica_fallbacks,
            report.replica_not_fresh,
            report.predicate_violations,
            report.final_version,
        );
        if args.switch("trace") {
            println!("ship trace: {}", report.ship_trace);
        }
        for f in &report.failures {
            eprintln!("iwchaos: FAIL {f}");
        }
        if report.converged {
            println!(
                "iwchaos: replica reads clean — every backup-served read within its \
                 staleness bound"
            );
            return Ok(());
        }
        eprintln!("iwchaos: REPLICA READS NOT CLEAN (seed {seed})");
        std::process::exit(1);
    }

    if args.switch("recover") {
        if run_recover(&cfg, seed)? {
            println!("iwchaos: recovery checks passed (seed {seed})");
            return Ok(());
        }
        eprintln!("iwchaos: RECOVERY FAILED (seed {seed})");
        std::process::exit(1);
    }

    let report = run_soak(&cfg);
    println!(
        "iwchaos: seed {seed}  clients {}  ops {}  injected {}+{} (client+ship)  \
         reconnects {}  final version {}",
        cfg.clients,
        cfg.ops,
        report.client_injections,
        report.ship_injections,
        report.client_reconnects,
        report.final_version,
    );
    println!(
        "iwchaos: diff wire {} B sent ({} B raw, {:.1}% saved) in {:.2}s ({:.1} KB/s)",
        report.diff_bytes_sent,
        report.diff_bytes_raw,
        100.0 * (1.0 - report.diff_bytes_sent as f64 / report.diff_bytes_raw.max(1) as f64),
        report.elapsed.as_secs_f64(),
        report.wire_bytes_per_sec() / 1024.0,
    );
    if args.switch("trace") {
        println!("client trace: {}", report.client_trace);
        println!("ship trace: {}", report.ship_trace);
    }
    for f in &report.failures {
        eprintln!("iwchaos: FAIL {f}");
    }
    if !report.backup_identical {
        eprintln!("iwchaos: FAIL backup diverged from primary after faults stopped");
    }
    if report.converged && report.backup_identical {
        println!(
            "iwchaos: converged — all {} slots match the fault-free oracle, backup identical",
            cfg.clients
        );
        Ok(())
    } else {
        eprintln!("iwchaos: NOT CONVERGED (seed {seed})");
        std::process::exit(1);
    }
}
