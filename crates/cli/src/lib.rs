//! # iw-cli — command-line tools for InterWeave-rs
//!
//! - **`iwsrv`** — a standalone InterWeave server daemon over TCP, with
//!   optional periodic checkpointing and crash recovery;
//! - **`iwdump`** — connects to a server and pretty-prints a segment:
//!   blocks, types, and leading values;
//! - **`iwstat`** — scrapes a live server's metrics snapshot and renders
//!   it as text, JSON, or Prometheus exposition;
//! - **`iwload`** — the many-client scale harness ([`load`]): thousands
//!   of concurrent live sessions doing acquire/write/release churn,
//!   reporting a connections-vs-throughput curve; with `--readers`, the
//!   read-fan-out harness ([`fanout`]) instead — one writer against
//!   hundreds of temporal readers served by the replica pool.
//!
//! Argument parsing is a deliberate 60-line hand-rolled affair
//! ([`Args`]): two flags and a positional don't justify a dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod load;

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` flags plus positionals.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// `--key value` becomes a flag, a lone `--key` at the end or before
    /// another `--…` becomes a switch, anything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.flags.insert(key.to_string(), v);
                    }
                    _ => out.switches.push(key.to_string()),
                }
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// The value of flag `key`, if given.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// `true` when the bare switch `--key` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn flags_switches_positionals() {
        let a = parse("--listen 0.0.0.0:7474 --recover seg/name --verbose");
        assert_eq!(a.flag("listen"), Some("0.0.0.0:7474"));
        assert!(!a.switch("listen"));
        // `--recover seg/name`: seg/name is the flag value here.
        assert_eq!(a.flag("recover"), Some("seg/name"));
        assert!(a.switch("verbose"));
        assert_eq!(a.positional_len(), 0);
    }

    #[test]
    fn trailing_switch_and_positional() {
        let a = parse("host/segment --tcp");
        assert_eq!(a.positional(0), Some("host/segment"));
        assert!(a.switch("tcp"));
        assert_eq!(a.flag("tcp"), None);
    }

    #[test]
    fn adjacent_switches() {
        let a = parse("--a --b value");
        assert!(a.switch("a"));
        assert_eq!(a.flag("b"), Some("value"));
    }

    #[test]
    fn empty() {
        let a = parse("");
        assert_eq!(a.positional(0), None);
        assert!(!a.switch("x"));
    }
}
