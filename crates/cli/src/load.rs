//! The `iwload` scale harness: drive thousands of concurrent live
//! sessions against a server and measure sustained commit throughput.
//!
//! Each *session* is one cached TCP connection (exactly what a real
//! client library holds per segment-table entry) working a private
//! segment: `Hello` → `Open`, then `rounds` acquire-write → release
//! cycles committing the deterministic diff `r → r+1` (round 0
//! allocates one `int64` block, later rounds overwrite it with `r` —
//! the same workload the kill harness uses, so content is verifiable:
//! after `v` rounds the block holds `v-1`).
//!
//! Sessions vastly outnumber OS threads: a small pool of *driver*
//! threads each owns a shard of sessions and steps them round-robin,
//! so all `sessions` connections are simultaneously live (the server
//! holds every socket) while at most `drivers` requests are in flight
//! from the harness side. A [`std::sync::Barrier`] separates the
//! connect phase from the churn phase: throughput is only measured
//! once every session is established.
//!
//! Connect/disconnect churn: with `reconnect_every = k`, a session
//! tears its connection down every `k` rounds — `Goodbye` (retiring
//! the client id and its locks), fresh connect, `Hello`, `Open` —
//! exercising the server's accept path under steady load.
//!
//! With `chaos` set, request errors are treated as injected faults:
//! the session reconnects, retires its old id, re-probes the segment
//! version (a lost-ack release may have landed), and resumes. Without
//! it, any error is a harness failure.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, ProtoError, TcpTransport, Transport};
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

/// Parameters for one load run (one point on the curve).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent live sessions (= open connections).
    pub sessions: usize,
    /// Acquire-write-release rounds per session.
    pub rounds: u64,
    /// Driver threads sharing the sessions.
    pub drivers: usize,
    /// Tear down and re-establish each session's connection every this
    /// many rounds (0 = never).
    pub reconnect_every: u64,
    /// Per-request I/O timeout.
    pub io_timeout: Duration,
    /// Tolerate recoverable injected faults (reconnect + resume).
    pub chaos: bool,
    /// Segment-name prefix (session `i` works `<prefix>/s<i>`). Give
    /// each run against a shared server its own prefix; reusing a
    /// prefix is tolerated (sessions adopt the server's version) but
    /// skews the committed-rounds count.
    pub segment_prefix: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7474".parse().expect("literal addr"),
            sessions: 100,
            rounds: 10,
            drivers: 16,
            reconnect_every: 0,
            io_timeout: Duration::from_secs(10),
            chaos: false,
            segment_prefix: "load".into(),
        }
    }
}

/// What one load run observed.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Sessions that connected and finished every round.
    pub completed_sessions: usize,
    /// Total committed rounds across all sessions.
    pub committed_rounds: u64,
    /// Churn-phase wall time (connect and verify excluded).
    pub elapsed: Duration,
    /// Committed rounds per second of churn time.
    pub throughput: f64,
    /// Total wire bytes moved in both directions across every session's
    /// connection lifetime (handshake, churn, and verify included).
    pub wire_bytes: u64,
    /// Wire bytes per second of churn time.
    pub wire_bytes_per_sec: f64,
    /// Connection re-establishments (planned churn + chaos recovery).
    pub reconnects: u64,
    /// Protocol errors and verification failures, human-readable.
    pub errors: Vec<String>,
}

impl LoadReport {
    /// `true` when every session finished and verified cleanly.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The deterministic diff committed in round `r` (version `r → r+1`);
/// identical to the kill harness's workload.
fn round_diff(r: u64) -> SegmentDiff {
    let mut d = SegmentDiff {
        from_version: r,
        to_version: r + 1,
        ..Default::default()
    };
    if r == 0 {
        d.new_types = vec![(0, TypeDesc::int64())];
        d.new_blocks = vec![NewBlock {
            serial: 0,
            name: Some("slot".into()),
            type_serial: 0,
            count: 1,
            data: Bytes::from(0i64.to_be_bytes().to_vec()),
        }];
    } else {
        d.block_diffs = vec![BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start: 0,
                count: 1,
                data: Bytes::from((r as i64).to_be_bytes().to_vec()),
            }],
        }];
    }
    d
}

/// One live session: a cached connection plus its protocol state.
struct Session {
    t: TcpTransport,
    client: u64,
    segment: String,
    /// Committed version so far (== completed rounds).
    version: u64,
    done: bool,
    /// Ids from earlier incarnations whose `Goodbye` was never
    /// acknowledged — any of them may still hold the write lock, so
    /// every reconnect re-retires all of them until each is acked.
    stale_ids: Vec<u64>,
    /// Wire bytes from connections already torn down by reconnects;
    /// the live connection's bytes live in `t.stats()` until then.
    carried_bytes: u64,
}

enum StepError {
    /// The transport died or the server answered out of contract.
    Broken(String),
}

fn connect_session(
    addr: SocketAddr,
    timeout: Duration,
    segment: &str,
    stale_ids: &mut Vec<u64>,
) -> Result<(TcpTransport, u64), String> {
    let mut t = TcpTransport::connect_with_timeout(addr, Some(timeout))
        .map_err(|e| format!("{segment}: connect: {e}"))?;
    let client = match t.request(&Request::Hello {
        info: format!("iwload:{segment}"),
    }) {
        Ok(Reply::Welcome { client, .. }) => client,
        Ok(Reply::Overloaded) => return Err(format!("{segment}: admission-rejected (Overloaded)")),
        other => return Err(format!("{segment}: hello: {other:?}")),
    };
    // Retire every previous incarnation whose Goodbye has not been
    // acknowledged yet: an unacked Goodbye (e.g. dropped by chaos
    // ingress) means that id may still hold the write lock. Ids stay on
    // the list until the server's `Released` ack is actually seen.
    stale_ids.retain(|&old| {
        !matches!(
            t.request(&Request::Goodbye { client: old }),
            Ok(Reply::Released { .. })
        )
    });
    match t.request(&Request::Open {
        client,
        segment: segment.into(),
    }) {
        Ok(Reply::Opened { .. }) => Ok((t, client)),
        other => Err(format!("{segment}: open: {other:?}")),
    }
}

impl Session {
    /// One acquire-write-release round. On success `self.version`
    /// advances (possibly by more than one in chaos mode, when a
    /// lost-ack release turns out to have landed).
    fn step(&mut self) -> Result<(), StepError> {
        let acq = self.t.request(&Request::Acquire {
            client: self.client,
            segment: self.segment.clone(),
            mode: LockMode::Write,
            have_version: self.version,
            coherence: Coherence::Full,
        });
        match acq {
            Ok(Reply::Granted { version, .. }) => {
                if version != self.version {
                    // The server is ahead of us: a previous release's
                    // ack was lost after the commit landed. Adopt.
                    self.version = version;
                }
            }
            Ok(Reply::Busy) => {
                // Our own retired id may still hold the lock for a
                // beat; surface as a broken step so the chaos path
                // reconnects (which retires it) and retries.
                return Err(StepError::Broken(format!(
                    "{}: write lock busy",
                    self.segment
                )));
            }
            other => {
                return Err(StepError::Broken(format!(
                    "{}: acquire: {other:?}",
                    self.segment
                )))
            }
        }
        let r = self.version;
        let rel = self.t.request(&Request::Release {
            client: self.client,
            segment: self.segment.clone(),
            diff: Some(round_diff(r)),
        });
        match rel {
            Ok(Reply::Released { version }) => {
                self.version = version;
                Ok(())
            }
            other => Err(StepError::Broken(format!(
                "{}: release: {other:?}",
                self.segment
            ))),
        }
    }

    /// Planned churn or chaos recovery: tear down, reconnect, retire
    /// every stale id, re-probe nothing (the next `step`'s acquire
    /// adopts the server's version).
    fn reconnect(&mut self, addr: SocketAddr, timeout: Duration) -> Result<(), String> {
        if !self.stale_ids.contains(&self.client) {
            self.stale_ids.push(self.client);
        }
        self.carried_bytes += self.t.stats().total_bytes();
        let (t, client) = connect_session(addr, timeout, &self.segment, &mut self.stale_ids)?;
        self.t = t;
        self.client = client;
        Ok(())
    }

    /// Final read-back: the segment version and block content must
    /// match what this session committed.
    fn verify(&mut self, chaos: bool) -> Result<(), String> {
        let reply = self.t.request(&Request::Acquire {
            client: self.client,
            segment: self.segment.clone(),
            mode: LockMode::Read,
            have_version: 0,
            coherence: Coherence::Full,
        });
        let (version, diff) = match reply {
            Ok(Reply::Granted {
                version,
                update: Some(diff),
                ..
            }) => (version, diff),
            other => return Err(format!("{}: verify acquire: {other:?}", self.segment)),
        };
        if version != self.version {
            return Err(format!(
                "{}: verify: server version {version}, session committed {}",
                self.segment, self.version
            ));
        }
        // Content invariant: after v rounds the slot holds v-1.
        let want = (version as i64 - 1).to_be_bytes();
        let got = diff
            .new_blocks
            .iter()
            .find(|b| b.serial == 0)
            .map(|b| b.data.to_vec());
        match got {
            Some(data) if data == want => {}
            other => {
                return Err(format!(
                    "{}: verify: slot bytes {other:?}, want {want:?} at version {version}",
                    self.segment
                ))
            }
        }
        let _ = chaos; // same invariant either way: version is adopted
                       // The read lock MUST come off: an unacked release (e.g. dropped
                       // by chaos ingress) leaves this client a registered reader,
                       // which blocks every later write acquire on the segment — a
                       // poison pill for whoever reuses the namespace. Surfacing the
                       // failure routes it into the caller's reconnect-retry loop,
                       // whose Goodbye retires the reader.
        match self.t.request(&Request::Release {
            client: self.client,
            segment: self.segment.clone(),
            diff: None,
        }) {
            Ok(Reply::Released { .. }) => Ok(()),
            other => Err(format!("{}: verify release: {other:?}", self.segment)),
        }
    }
}

/// Runs one load point: connect all sessions, churn, verify.
///
/// The returned report is complete even on failure — inspect
/// [`LoadReport::passed`] / [`LoadReport::errors`].
pub fn run(config: &LoadConfig) -> LoadReport {
    let drivers = config.drivers.clamp(1, config.sessions.max(1));
    let barrier = Arc::new(Barrier::new(drivers));
    let reconnects = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let wire_bytes = Arc::new(AtomicU64::new(0));
    let config = Arc::new(config.clone());

    // Shard sessions across drivers as evenly as possible.
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); drivers];
    for s in 0..config.sessions {
        shards[s % drivers].push(s);
    }

    let churn_started = Arc::new(std::sync::Mutex::new(None::<Instant>));
    let handles: Vec<_> = shards
        .into_iter()
        .map(|shard| {
            let config = config.clone();
            let barrier = barrier.clone();
            let reconnects = reconnects.clone();
            let committed = committed.clone();
            let wire_bytes = wire_bytes.clone();
            let churn_started = churn_started.clone();
            std::thread::spawn(move || {
                drive_shard(
                    &config,
                    &shard,
                    &barrier,
                    &reconnects,
                    &committed,
                    &wire_bytes,
                    &churn_started,
                )
            })
        })
        .collect();

    let mut errors = Vec::new();
    let mut completed_sessions = 0usize;
    let mut last_finish = None::<Instant>;
    for h in handles {
        let outcome = h.join().unwrap_or_else(|_| ShardOutcome {
            completed: 0,
            finished_at: None,
            errors: vec!["driver thread panicked".into()],
        });
        completed_sessions += outcome.completed;
        errors.extend(outcome.errors);
        last_finish = match (last_finish, outcome.finished_at) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    let started = churn_started.lock().unwrap_or_else(|e| e.into_inner());
    let elapsed = match (*started, last_finish) {
        (Some(s), Some(f)) => f.duration_since(s),
        _ => Duration::ZERO,
    };
    let committed_rounds = committed.load(Ordering::SeqCst);
    let throughput = if elapsed.as_secs_f64() > 0.0 {
        committed_rounds as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let total_wire_bytes = wire_bytes.load(Ordering::SeqCst);
    let wire_bytes_per_sec = if elapsed.as_secs_f64() > 0.0 {
        total_wire_bytes as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    LoadReport {
        completed_sessions,
        committed_rounds,
        elapsed,
        throughput,
        wire_bytes: total_wire_bytes,
        wire_bytes_per_sec,
        reconnects: reconnects.load(Ordering::SeqCst),
        errors,
    }
}

struct ShardOutcome {
    completed: usize,
    finished_at: Option<Instant>,
    errors: Vec<String>,
}

/// How many reconnect-and-retry attempts a chaos-mode step gets before
/// the session is declared broken.
const CHAOS_RETRIES: u32 = 25;

/// Formats a retry-budget exhaustion with the tail of what each attempt
/// saw — "write lock busy" alone says nothing about *why* 25 retries
/// could not get past it.
fn chaos_exhausted(segment: &str, history: &[String]) -> String {
    let tail = history
        .iter()
        .rev()
        .take(5)
        .rev()
        .cloned()
        .collect::<Vec<_>>();
    format!(
        "{segment}: chaos retries exhausted after {} attempts; last: [{}]",
        history.len(),
        tail.join(" | ")
    )
}

fn drive_shard(
    config: &LoadConfig,
    shard: &[usize],
    barrier: &Barrier,
    reconnects: &AtomicU64,
    committed: &AtomicU64,
    wire_bytes: &AtomicU64,
    churn_started: &std::sync::Mutex<Option<Instant>>,
) -> ShardOutcome {
    let mut errors = Vec::new();

    // Phase 1: connect every session in the shard. Under chaos the
    // handshake itself can be hit (dropped Hello, truncated Open), so
    // each session gets the same retry budget a churn step does.
    let mut sessions = Vec::with_capacity(shard.len());
    for &i in shard {
        let segment = format!("{}/s{i}", config.segment_prefix);
        let mut stale_ids = Vec::new();
        let mut attempts = 0u32;
        let outcome = loop {
            match connect_session(config.addr, config.io_timeout, &segment, &mut stale_ids) {
                Ok(ok) => break Ok(ok),
                Err(_) if config.chaos && attempts < CHAOS_RETRIES => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok((t, client)) => sessions.push(Session {
                t,
                client,
                segment,
                version: 0,
                done: false,
                stale_ids,
                carried_bytes: 0,
            }),
            Err(e) => errors.push(e),
        }
    }
    // All drivers hold their full shard of live connections before any
    // traffic flows: "N concurrent sessions" means N, not "up to N".
    barrier.wait();
    {
        let mut g = churn_started.lock().unwrap_or_else(|e| e.into_inner());
        g.get_or_insert_with(Instant::now);
    }

    // Phase 2: churn, stepping sessions round-robin.
    let mut live: Vec<usize> = (0..sessions.len()).collect();
    while !live.is_empty() {
        live.retain_mut(|&mut idx| {
            let s = &mut sessions[idx];
            if s.version >= config.rounds {
                s.done = true;
                return false;
            }
            // Planned connection churn.
            if config.reconnect_every > 0
                && s.version > 0
                && s.version % config.reconnect_every == 0
            {
                // Reconnect at most once per version boundary: step()
                // below advances the version so this does not loop.
                match s.reconnect(config.addr, config.io_timeout) {
                    Ok(()) => {
                        reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    // Under chaos, keep the old connection; the step
                    // retry loop below recovers if it is broken too.
                    Err(_) if config.chaos => {}
                    Err(e) => {
                        errors.push(format!("planned reconnect: {e}"));
                        return false;
                    }
                }
            }
            let before = s.version;
            let mut attempts = 0u32;
            let mut history: Vec<String> = Vec::new();
            loop {
                match s.step() {
                    Ok(()) => break,
                    Err(StepError::Broken(e)) if config.chaos && attempts < CHAOS_RETRIES => {
                        attempts += 1;
                        history.push(e);
                        std::thread::sleep(Duration::from_millis(5));
                        if let Err(re) = s.reconnect(config.addr, config.io_timeout) {
                            // Connect itself can be hit by chaos; keep
                            // trying within the retry budget.
                            history.push(format!("reconnect: {re}"));
                            if attempts >= CHAOS_RETRIES {
                                errors.push(chaos_exhausted(&s.segment, &history));
                                return false;
                            }
                            continue;
                        }
                        reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(StepError::Broken(e)) if config.chaos => {
                        history.push(e);
                        errors.push(chaos_exhausted(&s.segment, &history));
                        return false;
                    }
                    Err(StepError::Broken(e)) => {
                        errors.push(e);
                        return false;
                    }
                }
            }
            committed.fetch_add(s.version.saturating_sub(before), Ordering::Relaxed);
            true
        });
    }
    let finished_at = Instant::now();

    // Phase 3: verify every surviving session's segment.
    let mut completed = 0usize;
    for s in &mut sessions {
        if !s.done {
            continue;
        }
        let mut outcome = s.verify(config.chaos);
        if outcome.is_err() && config.chaos {
            // The verify read itself can be hit by injected faults.
            for _ in 0..CHAOS_RETRIES {
                if s.reconnect(config.addr, config.io_timeout).is_err() {
                    continue;
                }
                reconnects.fetch_add(1, Ordering::Relaxed);
                outcome = s.verify(config.chaos);
                if outcome.is_ok() {
                    break;
                }
            }
        }
        match outcome {
            Ok(()) => completed += 1,
            Err(e) => errors.push(e),
        }
    }
    let shard_bytes: u64 = sessions
        .iter()
        .map(|s| s.carried_bytes + s.t.stats().total_bytes())
        .sum();
    wire_bytes.fetch_add(shard_bytes, Ordering::Relaxed);
    ShardOutcome {
        completed,
        finished_at: Some(finished_at),
        errors,
    }
}

/// What the admission check observed.
#[derive(Debug, Default)]
pub struct AdmissionReport {
    /// Connections answered `Welcome` (admitted).
    pub welcomed: usize,
    /// Connections answered the typed `Overloaded` rejection.
    pub overloaded: usize,
    /// Connections that hung, were reset, or got a malformed answer.
    pub errors: Vec<String>,
}

/// Opens `attempts` simultaneous connections and sends `Hello` on each:
/// every one must receive a *typed* answer — `Welcome` under the cap,
/// `Overloaded` beyond it — never a hang or a bare reset. Admitted
/// connections are held open for the duration so they keep their slots.
pub fn admission_check(addr: SocketAddr, attempts: usize, timeout: Duration) -> AdmissionReport {
    let mut report = AdmissionReport::default();
    let mut held = Vec::new();
    for i in 0..attempts {
        match TcpTransport::connect_with_timeout(addr, Some(timeout)) {
            Ok(mut t) => match t.request(&Request::Hello {
                info: format!("admission:{i}"),
            }) {
                Ok(Reply::Welcome { .. }) => {
                    report.welcomed += 1;
                    held.push(t); // keep the slot occupied
                }
                Ok(Reply::Overloaded) => report.overloaded += 1,
                Ok(other) => report.errors.push(format!("conn {i}: {other:?}")),
                Err(ProtoError::Channel(e)) => {
                    report.errors.push(format!("conn {i}: channel: {e}"))
                }
                Err(e) => report.errors.push(format!("conn {i}: {e}")),
            },
            Err(e) => report.errors.push(format!("conn {i}: connect: {e}")),
        }
    }
    report
}
