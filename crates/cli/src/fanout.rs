//! The `iwload --readers` read-fan-out harness: one writer streaming
//! versions through the primary while many relaxed-coherence reader
//! sessions pull the segment through the replica fan-out path.
//!
//! Each reader is a full client [`Session`] under `Temporal(window)`
//! coherence against a TCP server group, so reads route exactly as the
//! library routes them: served locally while the staleness window
//! holds, from whichever backup satisfies the floor once it ages out
//! (a cheap `Frontier` probe re-arms the anchor), and from the primary
//! only when every backup is too stale. The writer commits
//! `value == version` into the shared slot, so every read is
//! self-checking: a torn or mis-versioned reply fails the run, as does
//! any non-monotonic version within one reader.
//!
//! The report splits reads into *local* (answered inside the staleness
//! window, no network), *replica-served* and *primary fallbacks*, and
//! carries the replica share of network reads — the number the scale
//! claim in the paper reproduction rests on.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use iw_core::{Connector, Session};
use iw_proto::{Coherence, TcpTransport, Transport};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

/// Parameters for one fan-out run.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// The primary (the server group's first member).
    pub primary: SocketAddr,
    /// Explicit read replicas. Ignored when `discover` is set — the
    /// group's advertised replica set is adopted instead. Note the
    /// advertised set still rides in on `Frontier` responses mid-run,
    /// *adding* to an explicit list: the effective replica count is a
    /// topology property, so measure a baseline by not attaching
    /// backups, not by trimming this list.
    pub replicas: Vec<SocketAddr>,
    /// Adopt the replicas the primary advertises (`Welcome` /
    /// `Frontier`) instead of an explicit list.
    pub discover: bool,
    /// Concurrent reader sessions.
    pub readers: usize,
    /// Locked reads per reader.
    pub reads_per_reader: u64,
    /// Versions the writer commits while the readers run.
    pub writes: u64,
    /// Driver threads sharing the readers.
    pub drivers: usize,
    /// Each reader's `Temporal` staleness window.
    pub window: Duration,
    /// Segment-namespace prefix; the shared feed is `<prefix>/feed`.
    /// Give each run against a shared server its own prefix.
    pub prefix: String,
}

impl FanoutConfig {
    /// A smoke-sized run against `primary` with advertised-replica
    /// discovery: 200 temporal readers, 10 reads each, 40 writes.
    pub fn smoke(primary: SocketAddr) -> FanoutConfig {
        FanoutConfig {
            primary,
            replicas: Vec::new(),
            discover: true,
            readers: 200,
            reads_per_reader: 10,
            writes: 40,
            drivers: 16,
            window: Duration::from_millis(5),
            prefix: format!("fan-{}", std::process::id()),
        }
    }
}

/// What one fan-out run observed, summed over every reader.
#[derive(Debug, Default)]
pub struct FanoutReport {
    /// Locked reads completed.
    pub reads: u64,
    /// Reads served by a backup (`cluster.replica_reads_total`).
    pub replica_reads: u64,
    /// Reads that fell back to the primary after the replica pool
    /// refused or failed (`cluster.replica_read_fallbacks_total`).
    pub fallbacks: u64,
    /// Reads not counted as replica-served or fallback. With replicas
    /// registered these are the reads answered inside the staleness
    /// window without touching the network; with an empty pool,
    /// uncounted primary polls land here too.
    pub local_reads: u64,
    /// Replica refusals along the way (`cluster.replica_not_fresh_total`).
    pub not_fresh: u64,
    /// Staleness-bound violations — must be zero
    /// (`cluster.replica_read_violations_total`).
    pub violations: u64,
    /// Cheap primary `Frontier` probes re-arming aged temporal anchors.
    pub frontier_probes: u64,
    /// Read replicas the first reader's group ended up with.
    pub replicas_attached: usize,
    /// The writer's final committed version.
    pub final_version: u64,
    /// Read-phase wall time.
    pub elapsed: Duration,
    /// Locked reads per second across all readers.
    pub reads_per_sec: f64,
    /// Wire bytes moved by the reader sessions, both directions
    /// (`proto.bytes_sent_total` + `proto.bytes_received_total`).
    pub wire_bytes: u64,
    /// Reader wire bytes per second of read-phase time.
    pub wire_bytes_per_sec: f64,
    /// Oracle and session failures, human-readable.
    pub errors: Vec<String>,
}

impl FanoutReport {
    /// Replica-served share of *network* reads, in [0, 1]; 1.0 when no
    /// read needed the network at all.
    pub fn replica_share(&self) -> f64 {
        let network = self.replica_reads + self.fallbacks;
        if network == 0 {
            return 1.0;
        }
        self.replica_reads as f64 / network as f64
    }

    /// `true` when every read verified and no staleness bound broke.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.violations == 0
    }
}

fn tcp_connector(addr: SocketAddr) -> Connector {
    Box::new(move || {
        let t = TcpTransport::connect(addr)
            .map_err(|e| iw_core::CoreError::Server(format!("connect {addr}: {e}")))?;
        Ok(Box::new(t) as Box<dyn Transport>)
    })
}

/// Opens a session against the group. With `discover`, the advertised
/// replica set rides in on the `Welcome`; otherwise the configured
/// replicas are registered explicitly.
fn group_session(cfg: &FanoutConfig) -> Result<Session, String> {
    let t = TcpTransport::connect(cfg.primary).map_err(|e| format!("connect primary: {e}"))?;
    let mut s =
        Session::new(MachineArch::x86_64(), Box::new(t)).map_err(|e| format!("session: {e}"))?;
    if cfg.discover {
        s.add_tcp_server_group(&cfg.prefix, &[cfg.primary])
            .map_err(|e| format!("server group: {e}"))?;
    } else {
        s.add_server_group(&cfg.prefix, vec![tcp_connector(cfg.primary)])
            .map_err(|e| format!("server group: {e}"))?;
        if !cfg.replicas.is_empty() {
            s.add_tcp_read_replicas(&cfg.prefix, &cfg.replicas)
                .map_err(|e| format!("read replicas: {e}"))?;
        }
    }
    Ok(s)
}

/// One live reader: its session, handle, and what it has seen so far.
/// Readers vastly outnumber driver threads; each driver steps its
/// shard round-robin (the `load` harness's idiom), so all sessions are
/// simultaneously live and a reader's staleness anchor ages naturally
/// between its turns.
struct Reader {
    s: Session,
    h: iw_core::SegHandle,
    id: usize,
    /// Last version observed (per-reader monotonicity oracle).
    last: u64,
    /// Locked reads completed.
    reads: u64,
}

impl Reader {
    fn connect(cfg: &FanoutConfig, id: usize) -> Result<Reader, String> {
        let feed = format!("{}/feed", cfg.prefix);
        let mut s = group_session(cfg).map_err(|e| format!("reader {id}: {e}"))?;
        let h = s
            .open_segment(&feed)
            .map_err(|e| format!("reader {id}: open: {e}"))?;
        s.set_coherence(&h, Coherence::Temporal(cfg.window.as_millis() as u64))
            .map_err(|e| format!("reader {id}: coherence: {e}"))?;
        Ok(Reader {
            s,
            h,
            id,
            last: 0,
            reads: 0,
        })
    }

    /// One locked read checking the `value == version` oracle.
    fn step(&mut self, mip: &str) -> Result<(), String> {
        let (id, i) = (self.id, self.reads);
        self.s
            .rl_acquire(&self.h)
            .map_err(|e| format!("reader {id}: acquire {i}: {e}"))?;
        let p = self
            .s
            .mip_to_ptr(mip)
            .map_err(|e| format!("reader {id}: mip {i}: {e}"))?;
        let value = self
            .s
            .read_i64(&p)
            .map_err(|e| format!("reader {id}: read {i}: {e}"))?;
        let version = self
            .s
            .segment_version(&self.h)
            .map_err(|e| format!("reader {id}: version {i}: {e}"))?;
        self.s
            .rl_release(&self.h)
            .map_err(|e| format!("reader {id}: release {i}: {e}"))?;
        if value != version as i64 {
            return Err(format!(
                "reader {id}: torn read: value {value} at version {version}"
            ));
        }
        if version < self.last {
            return Err(format!(
                "reader {id}: version moved backwards: v{version} after v{}",
                self.last
            ));
        }
        self.last = version;
        self.reads += 1;
        Ok(())
    }
}

/// Drives one shard: connect every reader, then step them round-robin
/// until each has done `reads_per_reader` reads. Returns the finished
/// sessions (their counters carry the routing split).
fn drive_shard(cfg: &FanoutConfig, shard: &[usize]) -> (Vec<(Session, u64)>, Vec<String>) {
    let mip = format!("{}/feed#x", cfg.prefix);
    let mut errors = Vec::new();
    let mut readers = Vec::with_capacity(shard.len());
    for &id in shard {
        match Reader::connect(cfg, id) {
            Ok(r) => readers.push(r),
            Err(e) => errors.push(e),
        }
    }
    let mut live: Vec<usize> = (0..readers.len()).collect();
    while !live.is_empty() {
        live.retain_mut(|&mut idx| {
            let r = &mut readers[idx];
            if r.reads >= cfg.reads_per_reader {
                return false;
            }
            match r.step(&mip) {
                Ok(()) => true,
                Err(e) => {
                    errors.push(e);
                    false
                }
            }
        });
    }
    (
        readers.into_iter().map(|r| (r.s, r.reads)).collect(),
        errors,
    )
}

fn counter(s: &Session, name: &str) -> u64 {
    s.metrics_snapshot().counter(name).unwrap_or(0)
}

/// Runs one fan-out point: seed the feed, race one writer against
/// `readers` temporal readers, sum the routing counters.
///
/// The returned report is complete even on failure — inspect
/// [`FanoutReport::passed`] / [`FanoutReport::errors`].
pub fn run_fanout(cfg: &FanoutConfig) -> FanoutReport {
    let mut report = FanoutReport::default();
    let feed = format!("{}/feed", cfg.prefix);

    // Seed version 1 with value == version before any reader opens.
    let mut writer = match group_session(cfg) {
        Ok(s) => s,
        Err(e) => {
            report.errors.push(format!("writer: {e}"));
            return report;
        }
    };
    let hw = match writer.open_segment(&feed) {
        Ok(h) => h,
        Err(e) => {
            report.errors.push(format!("writer: open: {e}"));
            return report;
        }
    };
    let seeded = writer.wl_acquire(&hw).and_then(|()| {
        let p = writer.malloc(&hw, &TypeDesc::int64(), 1, Some("x"))?;
        writer.write_i64(&p, 1)?;
        writer.wl_release(&hw)
    });
    if let Err(e) = seeded {
        report.errors.push(format!("writer: seed: {e}"));
        return report;
    }

    let errors = Mutex::new(Vec::new());
    let sessions: Mutex<Vec<(Session, u64)>> = Mutex::new(Vec::new());
    let drivers = cfg.drivers.clamp(1, cfg.readers.max(1));
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); drivers];
    for r in 0..cfg.readers {
        shards[r % drivers].push(r);
    }

    let started = Instant::now();
    std::thread::scope(|scope| {
        // The writer paces `writes` commits across the read phase.
        scope.spawn(|| {
            let mip = format!("{feed}#x");
            for _ in 0..cfg.writes {
                let committed = writer.wl_acquire(&hw).and_then(|()| {
                    let next = writer.segment_version(&hw)? + 1;
                    let p = writer.mip_to_ptr(&mip)?;
                    writer.write_i64(&p, next as i64)?;
                    writer.wl_release(&hw)
                });
                if let Err(e) = committed {
                    errors.lock().unwrap().push(format!("writer: commit: {e}"));
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let (sessions, errors) = (&sessions, &errors);
        for shard in &shards {
            scope.spawn(move || {
                let (done, errs) = drive_shard(cfg, shard);
                sessions.lock().unwrap().extend(done);
                errors.lock().unwrap().extend(errs);
            });
        }
    });
    report.elapsed = started.elapsed();
    report.errors = errors.into_inner().unwrap();
    report.final_version = writer.segment_version(&hw).unwrap_or(0);

    for (s, reads) in sessions.into_inner().unwrap() {
        report.reads += reads;
        report.replica_reads += counter(&s, "cluster.replica_reads_total");
        report.fallbacks += counter(&s, "cluster.replica_read_fallbacks_total");
        report.not_fresh += counter(&s, "cluster.replica_not_fresh_total");
        report.violations += counter(&s, "cluster.replica_read_violations_total");
        report.frontier_probes += counter(&s, "cluster.frontier_probes_total");
        report.wire_bytes +=
            counter(&s, "proto.bytes_sent_total") + counter(&s, "proto.bytes_received_total");
        report.replicas_attached = report
            .replicas_attached
            .max(s.read_replica_labels(&cfg.prefix).len());
    }
    report.local_reads = report
        .reads
        .saturating_sub(report.replica_reads + report.fallbacks);
    report.reads_per_sec = if report.elapsed.as_secs_f64() > 0.0 {
        report.reads as f64 / report.elapsed.as_secs_f64()
    } else {
        0.0
    };
    report.wire_bytes_per_sec = if report.elapsed.as_secs_f64() > 0.0 {
        report.wire_bytes as f64 / report.elapsed.as_secs_f64()
    } else {
        0.0
    };
    report
}

/// Blocks until a floored probe read is served by a backup (the ship
/// stream has caught the advertised replicas up), or `deadline` passes.
/// Returns `true` on a replica-served probe. Call before measuring a
/// fan-out point so attach-time catch-up races don't skew the share.
///
/// Probes live on their own `<prefix>.warm/feed` segment — the
/// measured feed is left untouched.
pub fn await_replicas(cfg: &FanoutConfig, deadline: Duration) -> bool {
    let mut warm = cfg.clone();
    warm.prefix = format!("{}.warm", cfg.prefix);
    let feed = format!("{}/feed", warm.prefix);
    let mip = format!("{feed}#x");

    // Seed version 1 so probe reads have committed state to pull.
    let Ok(mut writer) = group_session(&warm) else {
        return false;
    };
    let Ok(hw) = writer.open_segment(&feed) else {
        return false;
    };
    let seeded = writer.wl_acquire(&hw).and_then(|()| {
        let p = writer.malloc(&hw, &TypeDesc::int64(), 1, Some("x"))?;
        writer.write_i64(&p, 1)?;
        writer.wl_release(&hw)
    });
    if seeded.is_err() {
        return false;
    }

    let until = Instant::now() + deadline;
    while Instant::now() < until {
        // Advance the feed so every probe has a fresh version to fetch,
        // then read it back through a brand-new session under Delta(1).
        let bumped = writer.wl_acquire(&hw).and_then(|()| {
            let next = writer.segment_version(&hw)? + 1;
            let p = writer.mip_to_ptr(&mip)?;
            writer.write_i64(&p, next as i64)?;
            writer.wl_release(&hw)
        });
        if bumped.is_err() {
            return false;
        }
        let served = (|| -> Result<bool, String> {
            let mut s = group_session(&warm)?;
            let h = s
                .open_segment(&feed)
                .map_err(|e| format!("probe open: {e}"))?;
            s.set_coherence(&h, Coherence::Delta(1))
                .map_err(|e| format!("probe coherence: {e}"))?;
            s.rl_acquire(&h)
                .map_err(|e| format!("probe acquire: {e}"))?;
            s.rl_release(&h)
                .map_err(|e| format!("probe release: {e}"))?;
            Ok(counter(&s, "cluster.replica_reads_total") > 0)
        })();
        if matches!(served, Ok(true)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}
