//! Fault injection on the event-driven path: the PR-4 [`FaultLayer`]
//! worn server-side by [`NetServer`], acting faults out on the
//! nonblocking socket — scripted truncation, delay, duplication, and
//! drops, plus a seeded chaos smoke with reconnecting clients.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_faults::{FaultInjector, FaultLog, FaultPlan};
use iw_net::{NetOptions, NetServer};
use iw_proto::tcp::{read_frame, write_frame};
use iw_proto::{FaultAction, FaultLayer, Handler, Reply, Request, TcpTransport, Transport};
use iw_telemetry::Registry;

/// Answers Hello with `Welcome { client: info.len() }` and counts calls.
fn counting_handler(calls: Arc<AtomicU64>) -> Arc<dyn Handler> {
    Arc::new(move |req: Bytes| {
        calls.fetch_add(1, Ordering::SeqCst);
        match Request::decode(req) {
            Ok(Request::Hello { info }) => Reply::welcome(info.len() as u64).encode(),
            _ => Reply::Error {
                message: "unexpected".into(),
            }
            .encode(),
        }
    })
}

/// A deterministic per-request fault script: request `n` (1-based) gets
/// `script(n)`.
struct Script {
    n: u64,
    plan: fn(u64) -> FaultAction,
}

impl FaultLayer for Script {
    fn plan(&mut self, _req: &Request, _encoded: &Bytes) -> FaultAction {
        self.n += 1;
        (self.plan)(self.n)
    }
}

fn server_with_script(plan: fn(u64) -> FaultAction, calls: Arc<AtomicU64>) -> NetServer {
    NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        counting_handler(calls),
        NetOptions {
            workers: 1, // keep the script's request numbering deterministic
            fault_layer: Some(Box::new(Script { n: 0, plan })),
            ..NetOptions::default()
        },
        &Arc::new(Registry::new()),
    )
    .unwrap()
}

fn hello(info: &str) -> Request {
    Request::Hello { info: info.into() }
}

#[test]
fn injected_delay_is_visible_on_the_wire() {
    let server = server_with_script(
        |_| FaultAction::Delay(Duration::from_millis(120)),
        Arc::new(AtomicU64::new(0)),
    );
    let mut t = TcpTransport::connect(server.addr()).unwrap();
    let started = Instant::now();
    assert_eq!(t.request(&hello("zz")).unwrap(), Reply::welcome(2));
    assert!(
        started.elapsed() >= Duration::from_millis(120),
        "delay swallowed: {:?}",
        started.elapsed()
    );
}

#[test]
fn injected_drop_closes_without_reply() {
    let calls = Arc::new(AtomicU64::new(0));
    let server = server_with_script(
        |n| {
            if n == 2 {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        },
        calls.clone(),
    );
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("a").encode()).unwrap();
    assert!(read_frame(&mut stream).unwrap().is_some());
    write_frame(&mut stream, &hello("bb").encode()).unwrap();
    // Dropped: the server closes instead of answering.
    assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
    // The dropped request never reached the handler.
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn injected_drop_reply_executes_then_closes() {
    let calls = Arc::new(AtomicU64::new(0));
    let server = server_with_script(
        |n| {
            if n == 1 {
                FaultAction::DropReply
            } else {
                FaultAction::Deliver
            }
        },
        calls.clone(),
    );
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("x").encode()).unwrap();
    assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
    // Unlike Drop, the request *was* executed (lost-ack semantics).
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn injected_truncation_tears_the_reply_mid_frame() {
    let server = server_with_script(
        |n| {
            if n == 2 {
                FaultAction::Truncate(3)
            } else {
                FaultAction::Deliver
            }
        },
        Arc::new(AtomicU64::new(0)),
    );
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("ok").encode()).unwrap();
    assert!(read_frame(&mut stream).unwrap().is_some());
    write_frame(&mut stream, &hello("torn").encode()).unwrap();
    // The prefix announces the full reply but only 3 bytes arrive: the
    // blocking codec must surface a torn frame, not a clean EOF.
    let got = read_frame(&mut stream);
    assert!(got.is_err(), "want torn-frame error, got {got:?}");
}

#[test]
fn injected_duplicate_sends_one_reply_and_stays_in_sync() {
    let calls = Arc::new(AtomicU64::new(0));
    let server = server_with_script(
        |n| {
            if n == 1 {
                FaultAction::Duplicate
            } else {
                FaultAction::Deliver
            }
        },
        calls.clone(),
    );
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("dup").encode()).unwrap();
    let body = read_frame(&mut stream).unwrap().expect("first reply");
    assert_eq!(Reply::decode(Bytes::from(body)).unwrap(), Reply::welcome(3));
    // The duplicate executed server-side but produced no second frame;
    // the next round trip must not read a stale reply.
    write_frame(&mut stream, &hello("next1").encode()).unwrap();
    let body = read_frame(&mut stream).unwrap().expect("second reply");
    assert_eq!(Reply::decode(Bytes::from(body)).unwrap(), Reply::welcome(5));
    assert_eq!(calls.load(Ordering::SeqCst), 3, "dup executed twice");
}

#[test]
fn seeded_chaos_smoke_with_reconnecting_clients() {
    // A recoverable fault mix at a high rate: clients treat any
    // channel error as "reconnect and retry". The server must survive
    // and keep answering; no request may hang.
    let log = FaultLog::new();
    let injector = FaultInjector::new(0xC0FFEE, FaultPlan::recoverable(700), log.clone());
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        counting_handler(Arc::new(AtomicU64::new(0))),
        NetOptions {
            fault_layer: Some(Box::new(injector)),
            ..NetOptions::default()
        },
        &Arc::new(Registry::new()),
    )
    .unwrap();
    let addr = server.addr();
    let mut ok = 0u32;
    let mut t = TcpTransport::connect_with_timeout(addr, Some(Duration::from_secs(2))).unwrap();
    for i in 0..200 {
        match t.request(&hello(&format!("r{i}"))) {
            Ok(Reply::Welcome { .. }) => ok += 1,
            Ok(other) => panic!("unexpected reply {other:?}"),
            Err(_) => {
                // Torn reply / injected close: reconnect and continue.
                t = TcpTransport::connect_with_timeout(addr, Some(Duration::from_secs(2))).unwrap();
            }
        }
    }
    assert!(ok > 100, "most requests should land (got {ok}/200)");
    assert!(!log.trace().is_empty(), "the injector actually fired");
    // The server is still healthy after the chaos phase.
    let mut fresh = TcpTransport::connect(addr).unwrap();
    loop {
        // Even the post-chaos probe can be hit by the (still armed)
        // injector; retry until a clean round trip proves liveness.
        match fresh.request(&hello("post")) {
            Ok(reply) => {
                assert_eq!(reply, Reply::welcome(4));
                break;
            }
            Err(_) => {
                fresh = TcpTransport::connect(addr).unwrap();
            }
        }
    }
}
