//! End-to-end tests for the event-driven front end: real sockets, real
//! readiness loop, both poller backends, pipelining, backpressure,
//! admission control, idle reaping, graceful drain, and panic
//! isolation.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_net::{NetOptions, NetServer, PollerKind};
use iw_proto::tcp::{read_frame, write_frame};
use iw_proto::{Handler, Reply, Request, TcpTransport, Transport};
use iw_telemetry::Registry;

/// A handler speaking the Hello leg of the protocol: `Welcome` with
/// `client = info.len()`. An info of `sleep:<ms>:<pad>` sleeps first,
/// so tests can hold requests in flight deliberately.
fn echo_handler() -> Arc<dyn Handler> {
    Arc::new(|req: Bytes| match Request::decode(req) {
        Ok(Request::Hello { info }) => {
            let len = info.len() as u64;
            if let Some(rest) = info.strip_prefix("sleep:") {
                let ms: u64 = rest
                    .split(':')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Reply::welcome(len).encode()
        }
        _ => Reply::Error {
            message: "unexpected".into(),
        }
        .encode(),
    })
}

fn hello(info: &str) -> Request {
    Request::Hello { info: info.into() }
}

fn opts() -> NetOptions {
    NetOptions::default()
}

#[test]
fn roundtrip_on_both_pollers() {
    for kind in [PollerKind::Epoll, PollerKind::Poll] {
        if kind == PollerKind::Epoll && !cfg!(target_os = "linux") {
            continue;
        }
        let server = NetServer::spawn_with(
            "127.0.0.1:0".parse().unwrap(),
            echo_handler(),
            NetOptions {
                poller: kind,
                ..opts()
            },
            &Arc::new(Registry::new()),
        )
        .unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        let reply = t.request(&hello("abcd")).unwrap();
        assert_eq!(reply, Reply::welcome(4), "poller {kind}");
    }
}

#[test]
fn many_concurrent_clients() {
    let registry = Arc::new(Registry::new());
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        echo_handler(),
        opts(),
        &registry,
    )
    .unwrap();
    let threads: Vec<_> = (0..16)
        .map(|i| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut t = TcpTransport::connect(addr).unwrap();
                for _ in 0..20 {
                    let reply = t.request(&hello(&"x".repeat(i + 1))).unwrap();
                    assert_eq!(reply, Reply::welcome((i + 1) as u64));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tcp.accepted_total"), Some(16));
    assert_eq!(snap.counter("tcp.rejected_total"), Some(0));
    // All clients disconnected: the gauge drains back to zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if registry.snapshot().gauge("tcp.open_connections") == Some(0) {
            break;
        }
        assert!(Instant::now() < deadline, "open_connections never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn pipelined_requests_get_ordered_replies() {
    // Later requests sleep less, so with 4 workers the handler finishes
    // out of order; the loop must still deliver replies in request
    // order.
    let server = NetServer::spawn("127.0.0.1:0".parse().unwrap(), echo_handler()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut want = Vec::new();
    for i in 0..8usize {
        let pad = "p".repeat(i + 1);
        let info = format!("sleep:{}:{pad}", (8 - i) * 15);
        want.push(info.len() as u64);
        write_frame(&mut stream, &hello(&info).encode()).unwrap();
    }
    for (i, want_len) in want.iter().enumerate() {
        let body = read_frame(&mut stream).unwrap().expect("reply frame");
        let reply = Reply::decode(Bytes::from(body)).unwrap();
        assert_eq!(reply, Reply::welcome(*want_len), "reply {i}");
    }
}

#[test]
fn large_reply_resumes_across_partial_writes() {
    // A multi-megabyte reply cannot leave in one nonblocking write;
    // the connection must re-arm write interest and finish the frame.
    let big = "B".repeat(16 << 20);
    let handler: Arc<dyn Handler> = {
        let big = big.clone();
        Arc::new(move |req: Bytes| match Request::decode(req) {
            Ok(Request::Hello { .. }) => Reply::Error {
                message: big.clone(),
            }
            .encode(),
            _ => Reply::Error {
                message: "unexpected".into(),
            }
            .encode(),
        })
    };
    let registry = Arc::new(Registry::new());
    let server =
        NetServer::spawn_with("127.0.0.1:0".parse().unwrap(), handler, opts(), &registry).unwrap();
    // A raw client that does not read for a while: the kernel buffers
    // fill, the nonblocking write hits WouldBlock, and the connection
    // must park the remainder and resume on writability.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("gimme").encode()).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let body = read_frame(&mut stream).unwrap().expect("big reply");
    let Reply::Error { message } = Reply::decode(Bytes::from(body)).unwrap() else {
        panic!("want the big Error reply");
    };
    assert_eq!(message.len(), big.len());
    assert_eq!(message.as_bytes(), big.as_bytes());
    let stalls = registry
        .snapshot()
        .counter("tcp.write_stalls_total")
        .unwrap_or(0);
    assert!(stalls > 0, "a 16 MiB reply to a slow reader must stall");
}

#[test]
fn admission_cap_answers_typed_overloaded() {
    let registry = Arc::new(Registry::new());
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        echo_handler(),
        NetOptions {
            max_connections: 1,
            ..opts()
        },
        &registry,
    )
    .unwrap();
    // Fill the only slot and prove it is installed with a round trip.
    let mut held = TcpTransport::connect(server.addr()).unwrap();
    assert_eq!(held.request(&hello("x")).unwrap(), Reply::welcome(1));
    // The next connection is admitted only to be told "Overloaded".
    let mut over = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut over, &hello("straggler").encode()).unwrap();
    let body = read_frame(&mut over).unwrap().expect("typed reply");
    assert_eq!(Reply::decode(Bytes::from(body)).unwrap(), Reply::Overloaded);
    // ...and then closed by the server, not reset mid-reply.
    assert!(matches!(read_frame(&mut over), Ok(None) | Err(_)));
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tcp.rejected_total"), Some(1));
    assert_eq!(snap.counter("tcp.accepted_total"), Some(1));
    // The held session is unaffected.
    assert_eq!(held.request(&hello("yy")).unwrap(), Reply::welcome(2));
}

#[test]
fn idle_connections_are_reaped() {
    let registry = Arc::new(Registry::new());
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        echo_handler(),
        NetOptions {
            idle_timeout: Some(Duration::from_millis(150)),
            ..opts()
        },
        &registry,
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &hello("hi").encode()).unwrap();
    assert!(read_frame(&mut stream).unwrap().is_some());
    // Go quiet past the timeout: the server closes us.
    std::thread::sleep(Duration::from_millis(600));
    assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
    assert_eq!(
        registry.snapshot().counter("tcp.idle_closed_total"),
        Some(1)
    );
}

#[test]
fn inflight_budget_stalls_reads_but_serves_everything() {
    let registry = Arc::new(Registry::new());
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        echo_handler(),
        NetOptions {
            workers: 2,
            max_inflight_per_conn: 1,
            ..opts()
        },
        &registry,
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Burst 4 pipelined requests past a budget of 1.
    for _ in 0..4 {
        write_frame(&mut stream, &hello("sleep:30:x").encode()).unwrap();
    }
    for _ in 0..4 {
        let body = read_frame(&mut stream).unwrap().expect("reply");
        assert!(matches!(
            Reply::decode(Bytes::from(body)).unwrap(),
            Reply::Welcome { .. }
        ));
    }
    let stalls = registry
        .snapshot()
        .counter("tcp.read_stalls_total")
        .unwrap_or(0);
    assert!(stalls > 0, "the burst must have stalled the read side");
}

#[test]
fn graceful_drain_delivers_inflight_reply() {
    let server = NetServer::spawn("127.0.0.1:0".parse().unwrap(), echo_handler()).unwrap();
    let addr = server.addr();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &hello("sleep:200:pad").encode()).unwrap();
        let body = read_frame(&mut stream).unwrap().expect("drained reply");
        Reply::decode(Bytes::from(body)).unwrap()
    });
    // Let the request reach a worker, then shut the server down.
    std::thread::sleep(Duration::from_millis(80));
    drop(server);
    let reply = client.join().unwrap();
    assert!(matches!(reply, Reply::Welcome { .. }), "{reply:?}");
}

#[test]
fn handler_panic_is_isolated_and_counted() {
    let poison: Arc<dyn Handler> = Arc::new(|req: Bytes| match Request::decode(req) {
        Ok(Request::Hello { info }) if info == "poison" => panic!("poison request"),
        Ok(Request::Hello { info }) => Reply::welcome(info.len() as u64).encode(),
        _ => Reply::Error {
            message: "unexpected".into(),
        }
        .encode(),
    });
    let registry = Arc::new(Registry::new());
    let server =
        NetServer::spawn_with("127.0.0.1:0".parse().unwrap(), poison, opts(), &registry).unwrap();
    let mut t = TcpTransport::connect(server.addr()).unwrap();
    let Reply::Error { message } = t.request(&hello("poison")).unwrap() else {
        panic!("want Error");
    };
    assert!(message.contains("panicked"), "{message}");
    assert_eq!(
        registry.snapshot().counter("tcp.worker_panics_total"),
        Some(1)
    );
    // Connection and server both survive.
    assert_eq!(t.request(&hello("ok")).unwrap(), Reply::welcome(2));
    let mut t2 = TcpTransport::connect(server.addr()).unwrap();
    assert_eq!(t2.request(&hello("fresh")).unwrap(), Reply::welcome(5));
}

#[test]
fn worker_pool_runs_handlers_in_parallel() {
    let inflight_peak = Arc::new(AtomicU64::new(0));
    let inflight = Arc::new(AtomicU64::new(0));
    let handler: Arc<dyn Handler> = {
        let peak = inflight_peak.clone();
        let cur = inflight.clone();
        Arc::new(move |req: Bytes| {
            let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(100));
            cur.fetch_sub(1, Ordering::SeqCst);
            match Request::decode(req) {
                Ok(Request::Hello { info }) => Reply::welcome(info.len() as u64).encode(),
                _ => Reply::Error {
                    message: "unexpected".into(),
                }
                .encode(),
            }
        })
    };
    let server = NetServer::spawn_with(
        "127.0.0.1:0".parse().unwrap(),
        handler,
        NetOptions {
            workers: 4,
            ..opts()
        },
        &Arc::new(Registry::new()),
    )
    .unwrap();
    let started = Instant::now();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut t = TcpTransport::connect(addr).unwrap();
                t.request(&hello("go")).unwrap()
            })
        })
        .collect();
    for t in threads {
        assert!(matches!(t.join().unwrap(), Reply::Welcome { .. }));
    }
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "4 x 100 ms requests on 4 workers must overlap (took {:?})",
        started.elapsed()
    );
    assert!(inflight_peak.load(Ordering::SeqCst) >= 2);
}
