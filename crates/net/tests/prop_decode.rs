//! Property tests: the incremental [`FrameDecoder`] must produce
//! byte-identical output to the blocking codec
//! ([`iw_proto::tcp::read_frame`]) for every way the kernel can slice
//! the byte stream — every split point of every message, coalesced
//! adjacent messages, and arbitrary mixes of both.

use std::io::Cursor;

use bytes::Bytes;
use iw_net::FrameDecoder;
use iw_proto::tcp::read_frame;
use iw_proto::{Reply, Request};
use proptest::prelude::*;

/// Frames `bodies` exactly as the wire does.
fn stream_of(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for body in bodies {
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
    }
    out
}

/// What the blocking codec reads from the whole stream.
fn blocking_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = Cursor::new(stream.to_vec());
    let mut out = Vec::new();
    while let Ok(Some(body)) = read_frame(&mut cursor) {
        out.push(body);
    }
    out
}

/// What the incremental decoder reads when the stream is delivered in
/// the given chunks.
fn incremental_frames(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut prev = 0;
    let feed = |slice: &[u8], dec: &mut FrameDecoder, out: &mut Vec<Vec<u8>>| {
        dec.extend(slice);
        while let Some(frame) = dec.next_frame().unwrap() {
            out.push(frame.to_vec());
        }
    };
    for &cut in cuts {
        feed(&stream[prev..cut], &mut dec, &mut out);
        prev = cut;
    }
    feed(&stream[prev..], &mut dec, &mut out);
    assert_eq!(dec.buffered(), 0, "stream must end on a frame boundary");
    out
}

/// Real protocol messages of assorted shapes and sizes.
fn sample_messages(tag: u8, text: String) -> Vec<u8> {
    match tag % 4 {
        0 => Request::Hello { info: text }.encode().to_vec(),
        1 => Reply::Error { message: text }.encode().to_vec(),
        2 => Request::Open {
            client: u64::from(tag),
            segment: text,
        }
        .encode()
        .to_vec(),
        _ => Reply::welcome(text.len() as u64).encode().to_vec(),
    }
}

#[test]
fn every_split_point_of_every_message_boundary() {
    // Exhaustive, not sampled: a short stream of real messages split at
    // *every* byte position into two reads must decode identically to
    // the blocking codec.
    let bodies: Vec<Vec<u8>> = vec![
        Request::Hello {
            info: "client-a".into(),
        }
        .encode()
        .to_vec(),
        Reply::welcome(7).encode().to_vec(),
        Vec::new(), // empty frame
        Reply::Error {
            message: "x".repeat(300),
        }
        .encode()
        .to_vec(),
    ];
    let stream = stream_of(&bodies);
    let want = blocking_frames(&stream);
    assert_eq!(want, bodies);
    for cut in 0..=stream.len() {
        let got = incremental_frames(&stream, &[cut]);
        assert_eq!(got, want, "split at byte {cut}");
    }
}

#[test]
fn single_byte_trickle_matches_blocking() {
    let bodies: Vec<Vec<u8>> = (0u8..5)
        .map(|i| sample_messages(i, format!("msg-{i}-{}", "p".repeat(i as usize * 13))))
        .collect();
    let stream = stream_of(&bodies);
    let cuts: Vec<usize> = (1..stream.len()).collect();
    assert_eq!(incremental_frames(&stream, &cuts), blocking_frames(&stream));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary message mixes, arbitrary chunking (including chunks
    /// that coalesce several messages and chunks of zero bytes): the
    /// incremental decoder equals the blocking codec byte for byte.
    #[test]
    fn arbitrary_chunking_matches_blocking_codec(
        specs in prop::collection::vec((any::<u8>(), 0usize..600), 1..12),
        cut_fracs in prop::collection::vec(0.0f64..1.0, 0..24),
    ) {
        let bodies: Vec<Vec<u8>> = specs
            .iter()
            .map(|(tag, len)| sample_messages(*tag, "m".repeat(*len)))
            .collect();
        let stream = stream_of(&bodies);
        let mut cuts: Vec<usize> = cut_fracs
            .iter()
            .map(|f| (*f * stream.len() as f64) as usize)
            .collect();
        cuts.sort_unstable();
        let got = incremental_frames(&stream, &cuts);
        let want = blocking_frames(&stream);
        prop_assert_eq!(got, want);
    }

    /// Raw random payloads (not just valid protocol messages): framing
    /// is payload-agnostic and must still agree with the blocking codec.
    #[test]
    fn random_payloads_roundtrip(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..8),
        cut_fracs in prop::collection::vec(0.0f64..1.0, 0..10),
    ) {
        let stream = stream_of(&bodies);
        let mut cuts: Vec<usize> = cut_fracs
            .iter()
            .map(|f| (*f * stream.len() as f64) as usize)
            .collect();
        cuts.sort_unstable();
        prop_assert_eq!(incremental_frames(&stream, &cuts), bodies);
    }
}

#[test]
fn decoded_bytes_are_what_the_blocking_writer_sent() {
    // Drive the *writer* side of the blocking codec into a buffer and
    // decode it incrementally: full codec symmetry, not just framing.
    let messages = [
        Request::Hello { info: "hi".into() },
        Request::Open {
            client: 3,
            segment: "iw://host/seg".into(),
        },
        Request::Goodbye { client: 3 },
    ];
    let mut wire = Vec::new();
    for m in &messages {
        iw_proto::tcp::write_frame(&mut wire, &m.encode()).unwrap();
    }
    let mut dec = FrameDecoder::new();
    for chunk in wire.chunks(3) {
        dec.extend(chunk);
    }
    let mut got = Vec::new();
    while let Some(frame) = dec.next_frame().unwrap() {
        got.push(Request::decode(Bytes::from(frame.to_vec())).unwrap());
    }
    assert_eq!(got.as_slice(), messages.as_slice());
}
