//! The event-driven server front end.
//!
//! One readiness-polled event loop owns every connection; a bounded
//! worker pool calls the shared [`Handler`]. Connections are per-flow
//! state machines (`Conn`): incremental frame decode on the way in
//! ([`FrameDecoder`]), an outbound queue with partial-write resumption
//! on the way out, and explicit budgets in between:
//!
//! - **Admission control** — beyond `max_connections`, a fresh
//!   connection's first request is answered with the typed
//!   [`Reply::Overloaded`] and the connection is closed after the
//!   flush; beyond an additional headroom of rejecting slots the
//!   connection is dropped outright (counted, never served).
//! - **Backpressure** — per-connection and global in-flight budgets.
//!   When a budget is hit the loop simply stops reading that socket;
//!   the kernel's receive window fills and the client blocks in its
//!   own `write` — natural TCP backpressure, no queues growing without
//!   bound while the segment shards or the WAL saturate.
//! - **Idle timeouts** — connections with nothing in flight and
//!   nothing buffered are closed after `idle_timeout`.
//! - **Graceful drain** — dropping the server stops accepting, lets
//!   in-flight requests finish, flushes outbound queues (bounded by
//!   `drain_timeout`), then closes.
//!
//! The loop thread never calls the handler and the workers never touch
//! a socket: the only shared state is the job queue, the completion
//! list, and a wake pipe. Replies are delivered strictly in per-
//! connection request order, so pipelining clients stay in sync.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_proto::msg::{Reply, Request};
use iw_proto::tcp::{accept_retry_delay, is_fd_exhaustion};
use iw_proto::{FaultAction, FaultLayer, Handler};
use iw_telemetry::{Counter, Gauge, Registry};

use crate::decode::FrameDecoder;
use crate::poller::{Event, Interest, Poller, PollerKind};

/// Token reserved for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reserved for the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// How many admission-rejected connections may sit in their
/// reply-then-close handshake at once; beyond this the accept loop
/// drops new connections without a reply.
const REJECT_HEADROOM: usize = 256;

/// How long an admission-rejected connection may linger before the
/// loop closes it even if its typed reply never flushed.
const REJECT_LINGER: Duration = Duration::from_secs(10);

/// Tuning knobs for a [`NetServer`].
pub struct NetOptions {
    /// Worker threads calling the handler.
    pub workers: usize,
    /// Served-connection cap; further connections get the typed
    /// [`Reply::Overloaded`] answer (admission control).
    pub max_connections: usize,
    /// Global in-flight request budget: once this many decoded
    /// requests are dispatched and unanswered, the loop stops reading
    /// every socket.
    pub max_inflight: usize,
    /// Per-connection in-flight budget (pipelining depth).
    pub max_inflight_per_conn: usize,
    /// Close connections idle longer than this (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Bound on the graceful drain when the server is dropped.
    pub drain_timeout: Duration,
    /// Readiness backend.
    pub poller: PollerKind,
    /// Optional server-side fault layer consulted per request in the
    /// worker (chaos testing: delays, duplicate dispatch, torn reply
    /// writes on the nonblocking socket — see `iw-faults`).
    pub fault_layer: Option<Box<dyn FaultLayer>>,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            workers: 4,
            max_connections: 4096,
            max_inflight: 512,
            max_inflight_per_conn: 8,
            idle_timeout: None,
            drain_timeout: Duration::from_secs(5),
            poller: PollerKind::default_for_platform(),
            fault_layer: None,
        }
    }
}

impl std::fmt::Debug for NetOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetOptions")
            .field("workers", &self.workers)
            .field("max_connections", &self.max_connections)
            .field("max_inflight", &self.max_inflight)
            .field("max_inflight_per_conn", &self.max_inflight_per_conn)
            .field("idle_timeout", &self.idle_timeout)
            .field("drain_timeout", &self.drain_timeout)
            .field("poller", &self.poller)
            .field("faulty", &self.fault_layer.is_some())
            .finish()
    }
}

/// Front-end telemetry, shared with the thread-per-connection
/// [`iw_proto::TcpServer`] by name so the two are directly comparable
/// in one `iwstat` scrape.
struct NetMetrics {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    accept_errors: Arc<Counter>,
    open: Arc<Gauge>,
    read_stalls: Arc<Counter>,
    write_stalls: Arc<Counter>,
    idle_closed: Arc<Counter>,
}

impl NetMetrics {
    fn new(registry: &Arc<Registry>) -> NetMetrics {
        NetMetrics {
            accepted: registry.counter("tcp.accepted_total"),
            rejected: registry.counter("tcp.rejected_total"),
            accept_errors: registry.counter("tcp.accept_errors_total"),
            open: registry.gauge("tcp.open_connections"),
            read_stalls: registry.counter("tcp.read_stalls_total"),
            write_stalls: registry.counter("tcp.write_stalls_total"),
            idle_closed: registry.counter("tcp.idle_closed_total"),
        }
    }
}

/// One unit of work for the pool: a decoded frame from one connection.
struct Job {
    token: u64,
    gen: u64,
    seq: u64,
    body: Bytes,
}

/// What the worker decided the connection should see.
enum Outcome {
    /// Deliver this encoded reply.
    Reply(Bytes),
    /// Announce the full reply but deliver only `keep` bytes, then
    /// close — a torn write on the nonblocking socket (fault
    /// injection).
    Torn { reply: Bytes, keep: usize },
    /// Close the connection without replying (injected drop).
    Kill,
}

struct Completion {
    token: u64,
    gen: u64,
    seq: u64,
    outcome: Outcome,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Loop → workers: an unbounded queue whose depth is externally
/// bounded by the loop's global in-flight budget.
struct JobQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        lock(&self.inner).0.push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut guard = lock(&self.inner);
        loop {
            if let Some(job) = guard.0.pop_front() {
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.inner).1 = true;
        self.cv.notify_all();
    }
}

/// Workers → loop: completed requests plus the wake pipe's write end.
struct Completions {
    list: Mutex<Vec<Completion>>,
    wake_tx: File,
}

impl Completions {
    fn push(&self, c: Completion) {
        lock(&self.list).push(c);
        // A full pipe means a wake is already pending — ignore.
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut lock(&self.list))
    }
}

/// An outbound buffer with partial-write resumption.
struct OutBuf {
    data: Vec<u8>,
    off: usize,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u64,
    decoder: FrameDecoder,
    out: VecDeque<OutBuf>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Requests dispatched to the pool and not yet answered.
    inflight: usize,
    /// Sequence number for the next dispatched request.
    next_seq: u64,
    /// Sequence number of the next reply to put on the wire (replies
    /// are delivered strictly in request order).
    next_reply: u64,
    /// Out-of-order completions waiting for their turn.
    pending: BTreeMap<u64, Outcome>,
    /// Admission-rejected: first frame is answered `Overloaded`, then
    /// the connection closes.
    rejecting: bool,
    /// Flush the outbound queue, then close.
    close_after_flush: bool,
    /// Reading paused by an in-flight budget.
    paused: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, rejecting: bool) -> Conn {
        Conn {
            stream,
            gen,
            decoder: FrameDecoder::new(),
            out: VecDeque::new(),
            interest: Interest::READ,
            inflight: 0,
            next_seq: 0,
            next_reply: 0,
            pending: BTreeMap::new(),
            rejecting,
            close_after_flush: false,
            paused: false,
            last_activity: Instant::now(),
        }
    }

    /// Frames `body` (length prefix + payload) onto the outbound queue.
    fn enqueue_reply(&mut self, body: &[u8]) {
        let mut data = Vec::with_capacity(4 + body.len());
        data.extend_from_slice(&(body.len() as u32).to_be_bytes());
        data.extend_from_slice(body);
        self.out.push_back(OutBuf { data, off: 0 });
    }

    /// Frames a torn reply: the prefix announces the full length but
    /// only `keep` payload bytes follow (the peer sees a frame torn
    /// mid-stream once we close).
    fn enqueue_torn_reply(&mut self, body: &[u8], keep: usize) {
        let keep = keep.min(body.len());
        let mut data = Vec::with_capacity(4 + keep);
        data.extend_from_slice(&(body.len() as u32).to_be_bytes());
        data.extend_from_slice(&body[..keep]);
        self.out.push_back(OutBuf { data, off: 0 });
    }

    /// The interest this connection currently wants.
    fn desired_interest(&self, draining: bool) -> Interest {
        Interest {
            read: !self.paused && !self.close_after_flush && !draining,
            write: !self.out.is_empty(),
        }
    }
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: File,
    stop: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    completions: Arc<Completions>,
    max_inflight: usize,
    max_inflight_per_conn: usize,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    drain_timeout: Duration,
    metrics: NetMetrics,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Generation per slot, bumped on close so stale completions from
    /// a previous tenant of the slot are discarded.
    gens: Vec<u64>,
    open: usize,
    rejecting_open: usize,
    paused_count: usize,
    inflight_global: usize,
    accept_paused_until: Option<Instant>,
    accept_errs: u32,
    listener_registered: bool,
    draining: bool,
    drain_deadline: Option<Instant>,
    last_sweep: Instant,
    read_buf: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A failed wait is unrecoverable for the loop; drain
                // hard so Drop does not hang.
                break;
            }
            let mut accept_ready = false;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => self.handle_conn_event(token as usize, ev),
                }
            }
            self.drain_completions();
            self.maybe_resume_accept();
            if accept_ready {
                self.do_accept();
            }
            self.sweep_idle();
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.drain_finished() {
                break;
            }
        }
    }

    fn next_timeout(&self) -> Duration {
        let mut t = Duration::from_millis(250);
        let now = Instant::now();
        if let Some(until) = self.accept_paused_until {
            t = t.min(
                until
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1)),
            );
        }
        if self.idle_timeout.is_some() || self.rejecting_open > 0 {
            t = t.min(Duration::from_millis(100));
        }
        if let Some(deadline) = self.drain_deadline {
            t = t.min(
                deadline
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1)),
            );
            t = t.min(Duration::from_millis(20));
        }
        t
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 256];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn handle_conn_event(&mut self, slot: usize, ev: Event) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // closed earlier in this batch
        }
        if ev.readable || ev.closed {
            self.pump_read(slot);
        }
        if self.conns[slot].is_some() && (ev.writable || ev.closed) {
            self.pump_write(slot);
        }
    }

    // ---- accept path ------------------------------------------------

    fn maybe_resume_accept(&mut self) {
        if let Some(until) = self.accept_paused_until {
            if Instant::now() >= until {
                self.accept_paused_until = None;
                self.register_listener(true);
                self.do_accept();
            }
        }
    }

    fn register_listener(&mut self, on: bool) {
        if on && !self.listener_registered && !self.draining {
            let _ = self
                .poller
                .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ);
            self.listener_registered = true;
        } else if !on && self.listener_registered {
            self.poller
                .deregister(self.listener.as_raw_fd(), TOKEN_LISTENER);
            self.listener_registered = false;
        }
    }

    fn do_accept(&mut self) {
        loop {
            if self.draining || self.accept_paused_until.is_some() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_errs = 0;
                    self.install_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    self.metrics.accept_errors.inc();
                    if is_fd_exhaustion(&e) {
                        // Out of fds: stop accepting for a while and
                        // keep serving the connections we have.
                        let delay = accept_retry_delay(self.accept_errs);
                        self.accept_errs = self.accept_errs.saturating_add(1);
                        self.accept_paused_until = Some(Instant::now() + delay);
                        self.register_listener(false);
                        return;
                    }
                    // Transient per-connection errors (ECONNABORTED…):
                    // keep accepting.
                }
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream) {
        let rejecting = self.open >= self.max_connections;
        if rejecting {
            self.metrics.rejected.inc();
            if self.rejecting_open >= REJECT_HEADROOM {
                // No reply slots left either: drop outright.
                return;
            }
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        self.gens[slot] += 1;
        let conn = Conn::new(stream, self.gens[slot], rejecting);
        if self
            .poller
            .register(conn.stream.as_raw_fd(), slot as u64, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        if rejecting {
            self.rejecting_open += 1;
        } else {
            self.open += 1;
            self.metrics.accepted.inc();
            self.metrics.open.add(1);
        }
    }

    // ---- read path --------------------------------------------------

    /// Reads and dispatches until the socket runs dry, a budget stalls
    /// the connection, or the connection dies.
    fn pump_read(&mut self, slot: usize) {
        let mut close = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.close_after_flush {
                return; // no longer reading
            }
            'outer: loop {
                // Dispatch everything already buffered, budget
                // permitting.
                loop {
                    if !conn.rejecting
                        && (conn.inflight >= self.max_inflight_per_conn
                            || self.inflight_global >= self.max_inflight)
                    {
                        if !conn.paused {
                            conn.paused = true;
                            self.paused_count += 1;
                            self.metrics.read_stalls.inc();
                        }
                        break 'outer;
                    }
                    match conn.decoder.next_frame() {
                        Ok(Some(body)) => {
                            conn.last_activity = Instant::now();
                            if conn.rejecting {
                                // Typed admission answer, then close.
                                conn.enqueue_reply(&Reply::Overloaded.encode());
                                conn.close_after_flush = true;
                                break 'outer;
                            }
                            if self.draining {
                                // Stop consuming new work mid-drain;
                                // the frame stays buffered.
                                break 'outer;
                            }
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.inflight += 1;
                            self.inflight_global += 1;
                            self.queue.push(Job {
                                token: slot as u64,
                                gen: conn.gen,
                                seq,
                                body,
                            });
                        }
                        Ok(None) => break,
                        Err(_) => {
                            close = true; // unframeable stream
                            break 'outer;
                        }
                    }
                }
                // Refill from the socket.
                match conn.stream.read(&mut self.read_buf) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.extend(&self.read_buf[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        if close {
            self.close_conn(slot);
        } else {
            self.sync_interest(slot);
            // A rejecting conn just got its reply queued: flush now.
            self.pump_write(slot);
        }
    }

    // ---- write path -------------------------------------------------

    fn pump_write(&mut self, slot: usize) {
        let mut close = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            while let Some(front) = conn.out.front_mut() {
                match conn.stream.write(&front.data[front.off..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        front.off += n;
                        conn.last_activity = Instant::now();
                        if front.off == front.data.len() {
                            conn.out.pop_front();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Partial write: resume when writable again.
                        self.metrics.write_stalls.inc();
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.out.is_empty() && conn.close_after_flush {
                close = true;
            }
        }
        if close {
            self.close_conn(slot);
        } else {
            self.sync_interest(slot);
        }
    }

    // ---- completions ------------------------------------------------

    fn drain_completions(&mut self) {
        let completed = self.completions.take();
        if completed.is_empty() {
            return;
        }
        let mut touched = Vec::new();
        for c in completed {
            self.inflight_global -= 1;
            let slot = c.token as usize;
            let mut kill = false;
            {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue; // connection died while the job ran
                };
                if conn.gen != c.gen {
                    continue; // slot reused since
                }
                conn.inflight -= 1;
                conn.pending.insert(c.seq, c.outcome);
                // Release replies strictly in request order.
                while let Some(outcome) = conn.pending.remove(&conn.next_reply) {
                    conn.next_reply += 1;
                    match outcome {
                        Outcome::Reply(body) => conn.enqueue_reply(&body),
                        Outcome::Torn { reply, keep } => {
                            conn.enqueue_torn_reply(&reply, keep);
                            conn.close_after_flush = true;
                        }
                        Outcome::Kill => {
                            kill = true;
                            break;
                        }
                    }
                }
            }
            if kill {
                self.close_conn(slot);
            } else {
                touched.push(slot);
            }
        }
        for slot in touched {
            self.pump_write(slot);
        }
        // Budget headroom may have opened up: resume paused readers.
        self.resume_paused();
    }

    fn resume_paused(&mut self) {
        if self.paused_count == 0 || self.inflight_global >= self.max_inflight {
            return;
        }
        for slot in 0..self.conns.len() {
            if self.inflight_global >= self.max_inflight {
                break;
            }
            let resume = match self.conns[slot].as_mut() {
                Some(conn) if conn.paused && conn.inflight < self.max_inflight_per_conn => {
                    conn.paused = false;
                    self.paused_count -= 1;
                    true
                }
                _ => false,
            };
            if resume {
                self.pump_read(slot);
            }
        }
    }

    // ---- lifecycle --------------------------------------------------

    fn sync_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let want = conn.desired_interest(self.draining);
        if want != conn.interest {
            conn.interest = want;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), slot as u64, want);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        self.poller.deregister(conn.stream.as_raw_fd(), slot as u64);
        if conn.paused {
            self.paused_count -= 1;
        }
        if conn.rejecting {
            self.rejecting_open -= 1;
        } else {
            self.open -= 1;
            self.metrics.open.sub(1);
        }
        self.free.push(slot);
        self.gens[slot] += 1;
        // conn (and its socket) drop here.
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < Duration::from_millis(100) {
            return;
        }
        self.last_sweep = now;
        for slot in 0..self.conns.len() {
            let close = match self.conns[slot].as_ref() {
                Some(conn) if conn.rejecting => {
                    now.duration_since(conn.last_activity) > REJECT_LINGER
                }
                Some(conn) => match self.idle_timeout {
                    Some(t) => {
                        conn.inflight == 0
                            && conn.out.is_empty()
                            && now.duration_since(conn.last_activity) > t
                    }
                    None => false,
                },
                None => false,
            };
            if close {
                self.metrics.idle_closed.inc();
                self.close_conn(slot);
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.drain_timeout);
        self.register_listener(false);
        // Stop reading everywhere; finish what is in flight.
        for slot in 0..self.conns.len() {
            self.sync_interest(slot);
        }
    }

    fn drain_finished(&mut self) -> bool {
        if let Some(deadline) = self.drain_deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        self.inflight_global == 0
            && self
                .conns
                .iter()
                .flatten()
                .all(|c| c.out.is_empty() && c.pending.is_empty())
    }
}

fn worker_loop(
    queue: Arc<JobQueue>,
    completions: Arc<Completions>,
    handler: Arc<dyn Handler>,
    faults: Option<Arc<Mutex<Box<dyn FaultLayer>>>>,
    panics: Arc<Counter>,
) {
    let call = |body: Bytes| -> Bytes {
        match catch_unwind(AssertUnwindSafe(|| handler.handle(body))) {
            Ok(reply) => reply,
            Err(cause) => {
                panics.inc();
                let msg = cause
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| cause.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                eprintln!("iw-net: handler panicked while serving a request: {msg}");
                Reply::Error {
                    message: format!("internal server error: request handler panicked: {msg}"),
                }
                .encode()
            }
        }
    };
    while let Some(job) = queue.pop() {
        let action = match &faults {
            Some(layer) => match Request::decode(job.body.clone()) {
                // Undecodable frames skip the injector (it plans per
                // decoded request); the handler answers `bad request`.
                Err(_) => FaultAction::Deliver,
                Ok(req) => lock(layer).plan(&req, &job.body),
            },
            None => FaultAction::Deliver,
        };
        let outcome = match action {
            FaultAction::Deliver => Outcome::Reply(call(job.body)),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Outcome::Reply(call(job.body))
            }
            FaultAction::Drop => Outcome::Kill,
            FaultAction::DropReply => {
                let _ = call(job.body);
                Outcome::Kill
            }
            FaultAction::Corrupt(bytes) => Outcome::Reply(call(bytes)),
            FaultAction::Truncate(keep) => {
                let reply = call(job.body);
                let keep = keep.min(reply.len());
                Outcome::Torn { reply, keep }
            }
            FaultAction::Duplicate => {
                let first = call(job.body.clone());
                let _ = call(job.body);
                Outcome::Reply(first)
            }
        };
        completions.push(Completion {
            token: job.token,
            gen: job.gen,
            seq: job.seq,
            outcome,
        });
    }
}

/// A running event-driven TCP server wrapping a [`Handler`].
///
/// The drop-in replacement for [`iw_proto::TcpServer`]: same `spawn` /
/// `addr` shape, same handler contract, but one readiness-polled event
/// loop plus a fixed worker pool instead of a thread per connection.
/// Dropping the value drains gracefully (see [`NetOptions`]).
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake_tx: File,
    queue: Arc<JobQueue>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue").finish()
    }
}

impl NetServer {
    /// Binds `addr` (port 0 for ephemeral) with default options and a
    /// private registry.
    ///
    /// # Errors
    ///
    /// Bind or poller-creation failure.
    pub fn spawn(addr: SocketAddr, handler: Arc<dyn Handler>) -> io::Result<NetServer> {
        NetServer::spawn_with(
            addr,
            handler,
            NetOptions::default(),
            &Arc::new(Registry::new()),
        )
    }

    /// Binds `addr` and serves `handler` with explicit options, homing
    /// the front-end telemetry (`tcp.open_connections`,
    /// `tcp.accepted_total`, `tcp.rejected_total`, stall counters,
    /// `tcp.worker_panics_total`) in `registry`.
    ///
    /// # Errors
    ///
    /// Bind or poller-creation failure.
    pub fn spawn_with(
        addr: SocketAddr,
        handler: Arc<dyn Handler>,
        opts: NetOptions,
        registry: &Arc<Registry>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut poller = Poller::new(opts.poller)?;
        let (wake_rx, wake_tx) = crate::sys::wake_pipe()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;

        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new());
        let completions = Arc::new(Completions {
            list: Mutex::new(Vec::new()),
            wake_tx: wake_tx.try_clone()?,
        });
        let panics = registry.counter("tcp.worker_panics_total");
        let faults = opts.fault_layer.map(|mut layer| {
            layer.bind_registry(registry);
            Arc::new(Mutex::new(layer))
        });

        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let queue = queue.clone();
                let completions = completions.clone();
                let handler = handler.clone();
                let faults = faults.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("iw-net-worker-{i}"))
                    .spawn(move || worker_loop(queue, completions, handler, faults, panics))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let event_loop = EventLoop {
            poller,
            listener,
            wake_rx,
            stop: stop.clone(),
            queue: queue.clone(),
            completions,
            max_inflight: opts.max_inflight.max(1),
            max_inflight_per_conn: opts.max_inflight_per_conn.max(1),
            max_connections: opts.max_connections.max(1),
            idle_timeout: opts.idle_timeout,
            drain_timeout: opts.drain_timeout,
            metrics: NetMetrics::new(registry),
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            open: 0,
            rejecting_open: 0,
            paused_count: 0,
            inflight_global: 0,
            accept_paused_until: None,
            accept_errs: 0,
            listener_registered: true,
            draining: false,
            drain_deadline: None,
            last_sweep: Instant::now(),
            read_buf: vec![0u8; 64 << 10],
        };
        let loop_thread = std::thread::Builder::new()
            .name("iw-net-loop".into())
            .spawn(move || event_loop.run())?;

        Ok(NetServer {
            addr: local,
            stop,
            wake_tx,
            queue,
            loop_thread: Some(loop_thread),
            workers,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&self.wake_tx).write(&[1]);
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
