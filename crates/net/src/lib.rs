//! # iw-net — event-driven server front end
//!
//! A nonblocking, readiness-polled connection front end for
//! InterWeave-rs servers: the scalable alternative to the
//! thread-per-connection [`iw_proto::TcpServer`]. One event-loop
//! thread multiplexes every connection through [`poller::Poller`]
//! (epoll on Linux, `poll(2)` elsewhere), per-connection state
//! machines reassemble frames incrementally and resume partial
//! writes, and a bounded worker pool runs the actual
//! [`iw_proto::Handler`] — the same `Arc<dyn Handler>` the blocking
//! front end serves, so `iw-server`, the cluster `Primary`, chaos
//! wrappers, and durability all slot in unchanged.
//!
//! See `DESIGN.md` §9 for the loop structure, backpressure rules, and
//! where the worker pool sits in the lock hierarchy.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod decode;
pub mod poller;
pub mod server;
pub mod sys;

pub use decode::{FrameDecoder, FrameError, MAX_FRAME};
pub use poller::{Event, Interest, Poller, PollerKind};
pub use server::{NetOptions, NetServer};
