//! Incremental frame decoding for the nonblocking read path.
//!
//! The wire framing is the same `u32` big-endian length prefix the
//! blocking codec ([`iw_proto::tcp::read_frame`]) reads — but a
//! nonblocking socket hands bytes over in arbitrary slices: half a
//! prefix now, three frames plus a tail later. [`FrameDecoder`] is the
//! per-connection state machine that re-assembles exactly the frames
//! the blocking codec would have produced, byte for byte (property
//! tested against it at every split point in
//! `tests/prop_decode.rs`).

use bytes::Bytes;

/// Frames longer than this are protocol violations (matches the
/// blocking codec's cap in `iw_proto::tcp::read_frame`).
pub const MAX_FRAME: usize = 256 << 20;

/// A framing violation found in the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix announced more than [`MAX_FRAME`] bytes.
    TooLarge {
        /// The announced length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len } => write!(f, "frame of {len} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Re-assembles length-prefixed frames from arbitrarily split reads.
///
/// Feed raw socket bytes with [`FrameDecoder::extend`], then drain
/// complete frames with [`FrameDecoder::next_frame`]. Incomplete tail
/// bytes stay buffered until the next read. The internal buffer
/// compacts lazily: consumed bytes are reclaimed once they outweigh
/// the live remainder, so steady-state decoding does not memmove per
/// frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// A fresh decoder with nothing buffered.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw socket bytes to the reassembly buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame body, `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the announced length exceeds
    /// [`MAX_FRAME`]; the connection must be dropped (the stream can
    /// never re-synchronize).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let p = self.start;
        let len = u32::from_be_bytes([
            self.buf[p],
            self.buf[p + 1],
            self.buf[p + 2],
            self.buf[p + 3],
        ]) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge { len });
        }
        if avail < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(&self.buf[p + 4..p + 4 + len]);
        self.start = p + 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(body))
    }

    /// Reclaims consumed prefix bytes once they dominate the buffer.
    fn maybe_compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut out = (body.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn single_byte_feeds_reassemble() {
        let stream = [frame(b"hello"), frame(b""), frame(b"world!")].concat();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f.to_vec());
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn coalesced_frames_in_one_feed() {
        let stream = [frame(b"a"), frame(b"bb"), frame(b"ccc")].concat();
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap().to_vec(), b"a".to_vec());
        assert_eq!(dec.next_frame().unwrap().unwrap().to_vec(), b"bb".to_vec());
        assert_eq!(dec.next_frame().unwrap().unwrap().to_vec(), b"ccc".to_vec());
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_tail_stays_buffered() {
        let full = frame(b"abcdef");
        let mut dec = FrameDecoder::new();
        dec.extend(&full[..7]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 7);
        dec.extend(&full[7..]);
        assert_eq!(
            dec.next_frame().unwrap().unwrap().to_vec(),
            b"abcdef".to_vec()
        );
    }

    #[test]
    fn oversized_frame_is_an_error() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn compaction_preserves_stream() {
        // Push enough small frames to trigger compaction mid-stream.
        let mut dec = FrameDecoder::new();
        let mut expect = Vec::new();
        for i in 0..5000u32 {
            let body = i.to_be_bytes();
            dec.extend(&frame(&body));
            expect.push(body.to_vec());
        }
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f.to_vec());
            // Interleave a fresh feed to exercise extend-after-consume.
            if got.len() == 2500 {
                dec.extend(&frame(b"tail"));
                expect.push(b"tail".to_vec());
            }
        }
        assert_eq!(got, expect);
    }
}
