//! Readiness polling behind one safe interface.
//!
//! The event loop speaks [`Poller`]; the backend is either **epoll**
//! (Linux, O(ready) wake-ups, the production path) or **`poll(2)`**
//! (POSIX fallback, O(registered) scans — plenty for tests and small
//! deployments, and it keeps the loop honest about portability).
//! Both deliver the same [`Event`] records keyed by caller tokens.

use std::collections::HashMap;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::time::Duration;

use crate::sys;

/// Which readiness backend a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux `epoll`: interest registered once, wake-ups are O(ready).
    Epoll,
    /// Portable `poll(2)`: the fd set is rebuilt per wait.
    Poll,
}

impl PollerKind {
    /// The preferred backend for this platform.
    pub fn default_for_platform() -> PollerKind {
        if cfg!(target_os = "linux") {
            PollerKind::Epoll
        } else {
            PollerKind::Poll
        }
    }

    /// Parses `"epoll"` / `"poll"`.
    pub fn parse(s: &str) -> Option<PollerKind> {
        match s {
            "epoll" => Some(PollerKind::Epoll),
            "poll" => Some(PollerKind::Poll),
            _ => None,
        }
    }
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        })
    }
}

/// One readiness report for a registered fd.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// Error or hangup: the owner should read to EOF / close.
    pub closed: bool,
}

/// The interest set for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.read {
            bits |= sys::EPOLLIN;
        }
        if self.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn poll_bits(self) -> i16 {
        let mut bits = 0;
        if self.read {
            bits |= sys::POLLIN;
        }
        if self.write {
            bits |= sys::POLLOUT;
        }
        bits
    }
}

enum Backend {
    Epoll {
        epfd: OwnedFd,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        registered: HashMap<u64, (RawFd, Interest)>,
        /// Scratch `pollfd` array and the token each row maps to,
        /// rebuilt per wait.
        fds: Vec<sys::PollFd>,
        tokens: Vec<u64>,
    },
}

/// A registered set of fds that can be waited on for readiness.
pub struct Poller {
    backend: Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("kind", &self.kind())
            .finish()
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not busy-spin at 0ms.
        Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as i32,
    }
}

impl Poller {
    /// Creates a poller of the given kind.
    ///
    /// # Errors
    ///
    /// `epoll_create1` failure (epoll backend only).
    pub fn new(kind: PollerKind) -> io::Result<Poller> {
        let backend = match kind {
            PollerKind::Epoll => Backend::Epoll {
                epfd: sys::epoll_create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            },
            PollerKind::Poll => Backend::Poll {
                registered: HashMap::new(),
                fds: Vec::new(),
                tokens: Vec::new(),
            },
        };
        Ok(Poller { backend })
    }

    /// The backend in use.
    pub fn kind(&self) -> PollerKind {
        match &self.backend {
            Backend::Epoll { .. } => PollerKind::Epoll,
            Backend::Poll { .. } => PollerKind::Poll,
        }
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failure (epoll backend only).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => sys::epoll_control(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                interest.epoll_bits(),
                token,
            ),
            Backend::Poll { registered, .. } => {
                registered.insert(token, (fd, interest));
                Ok(())
            }
        }
    }

    /// Replaces the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failure (epoll backend only).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => sys::epoll_control(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                interest.epoll_bits(),
                token,
            ),
            Backend::Poll { registered, .. } => {
                registered.insert(token, (fd, interest));
                Ok(())
            }
        }
    }

    /// Removes a registered fd. Errors are swallowed: deregistration
    /// races with peer-driven closes and must be idempotent.
    pub fn deregister(&mut self, fd: RawFd, token: u64) {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => {
                let _ = sys::epoll_control(epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, token);
            }
            Backend::Poll { registered, .. } => {
                registered.remove(&token);
            }
        }
    }

    /// Waits for readiness, appending to `out` (which is cleared first).
    /// `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Backend wait failure (`EINTR` is absorbed and yields no events).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            Backend::Epoll { epfd, buf } => {
                let n = sys::epoll_pwait(epfd.as_raw_fd(), buf, timeout_ms(timeout))?;
                for ev in &buf[..n] {
                    let bits = ev.events;
                    out.push(Event {
                        token: ev.data,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll {
                registered,
                fds,
                tokens,
            } => {
                fds.clear();
                tokens.clear();
                for (&token, &(fd, interest)) in registered.iter() {
                    fds.push(sys::PollFd {
                        fd,
                        events: interest.poll_bits(),
                        revents: 0,
                    });
                    tokens.push(token);
                }
                if fds.is_empty() {
                    // Nothing registered: just honor the timeout.
                    if let Some(t) = timeout {
                        std::thread::sleep(t.min(Duration::from_millis(50)));
                    }
                    return Ok(());
                }
                let n = sys::poll_wait(fds, timeout_ms(timeout))?;
                if n > 0 {
                    for (row, &token) in fds.iter().zip(tokens.iter()) {
                        let bits = row.revents;
                        if bits == 0 {
                            continue;
                        }
                        out.push(Event {
                            token,
                            readable: bits & sys::POLLIN != 0,
                            writable: bits & sys::POLLOUT != 0,
                            closed: bits & (sys::POLLERR | sys::POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn pending_connect_becomes_event(kind: PollerKind) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(kind).unwrap();
        poller
            .register(listener.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no client yet");
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 9 && e.readable),
            "{events:?}"
        );
    }

    #[test]
    fn epoll_backend_sees_accepts() {
        if cfg!(target_os = "linux") {
            pending_connect_becomes_event(PollerKind::Epoll);
        }
    }

    #[test]
    fn poll_backend_sees_accepts() {
        pending_connect_becomes_event(PollerKind::Poll);
    }

    #[test]
    fn kind_parses() {
        assert_eq!(PollerKind::parse("epoll"), Some(PollerKind::Epoll));
        assert_eq!(PollerKind::parse("poll"), Some(PollerKind::Poll));
        assert_eq!(PollerKind::parse("kqueue"), None);
        assert_eq!(PollerKind::Epoll.to_string(), "epoll");
    }
}
