//! Raw syscall bindings for readiness polling.
//!
//! The build environment has no crates-registry route, so there is no
//! `libc` crate to lean on. The handful of symbols the event loop needs
//! — `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux, portable
//! `poll(2)`, and `pipe2` for the loop wake-up — are declared here and
//! resolved from the C runtime `std` already links. This is the only
//! module in the workspace that uses `unsafe`; everything above it
//! speaks [`Poller`](crate::poller::Poller) and owned fds.

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_ulong};

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer shut down the write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: remove a registered fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change a registered fd's interest set.
pub const EPOLL_CTL_MOD: c_int = 3;

/// `EPOLL_CLOEXEC` for `epoll_create1`.
const EPOLL_CLOEXEC: c_int = 0o200_0000;
/// `O_NONBLOCK` (Linux generic).
const O_NONBLOCK: c_int = 0o4000;
/// `O_CLOEXEC` (Linux generic).
const O_CLOEXEC: c_int = 0o200_0000;

/// `POLLIN` for `poll(2)`.
pub const POLLIN: i16 = 0x001;
/// `POLLOUT` for `poll(2)`.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR` for `poll(2)` (revents only).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP` for `poll(2)` (revents only).
pub const POLLHUP: i16 = 0x010;

/// One `struct epoll_event`. On x86-64 the kernel ABI packs the struct
/// (u32 events immediately followed by the u64 payload); other
/// architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-owned payload; this crate stores the connection token.
    pub data: u64,
}

/// One `struct pollfd` for `poll(2)`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The fd to poll.
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates an epoll instance (`EPOLL_CLOEXEC`); the returned fd closes
/// itself on drop.
///
/// # Errors
///
/// The raw `epoll_create1` errno.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    // SAFETY: a successful epoll_create1 returns a fresh fd we own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `epoll_ctl` over an owned epoll fd.
///
/// # Errors
///
/// The raw `epoll_ctl` errno.
pub fn epoll_control(epfd: RawFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// `epoll_wait` into `events`, returning how many entries were filled.
/// `timeout_ms < 0` blocks indefinitely. `EINTR` surfaces as `Ok(0)` so
/// callers simply re-iterate.
///
/// # Errors
///
/// Any other `epoll_wait` errno.
pub fn epoll_pwait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
    match cvt(n) {
        Ok(n) => Ok(n as usize),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        Err(e) => Err(e),
    }
}

/// `poll(2)` over `fds`, returning how many fds have events. `EINTR`
/// surfaces as `Ok(0)`.
///
/// # Errors
///
/// Any other `poll` errno.
pub fn poll_wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    match cvt(n) {
        Ok(n) => Ok(n as usize),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        Err(e) => Err(e),
    }
}

/// Creates a nonblocking close-on-exec pipe `(read, write)` — the event
/// loop's wake-up channel: workers write a byte, the loop drains it.
///
/// # Errors
///
/// The raw `pipe2` errno.
pub fn wake_pipe() -> io::Result<(File, File)> {
    let mut fds: [c_int; 2] = [-1, -1];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    // SAFETY: a successful pipe2 returns two fresh fds we own.
    let r = unsafe { File::from_raw_fd(fds[0]) };
    let w = unsafe { File::from_raw_fd(fds[1]) };
    Ok((r, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pipe_roundtrips_and_is_nonblocking() {
        let (mut r, mut w) = wake_pipe().unwrap();
        // Empty pipe: nonblocking read reports WouldBlock instead of hanging.
        let mut buf = [0u8; 8];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        w.write_all(&[7]).unwrap();
        assert_eq!(r.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn epoll_reports_pipe_readability() {
        let (r, mut w) = wake_pipe().unwrap();
        let ep = epoll_create().unwrap();
        epoll_control(ep.as_raw_fd(), EPOLL_CTL_ADD, r.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out empty.
        assert_eq!(epoll_pwait(ep.as_raw_fd(), &mut events, 0).unwrap(), 0);
        w.write_all(&[1]).unwrap();
        let n = epoll_pwait(ep.as_raw_fd(), &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);
    }

    #[test]
    fn poll_reports_pipe_readability() {
        let (r, mut w) = wake_pipe().unwrap();
        let mut fds = [PollFd {
            fd: r.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(poll_wait(&mut fds, 0).unwrap(), 0);
        w.write_all(&[1]).unwrap();
        assert_eq!(poll_wait(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }
}
