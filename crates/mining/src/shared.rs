//! Sharing the lattice through an InterWeave segment.
//!
//! "This summary structure is shared between the database server and the
//! mining client in an InterWeave segment. Approximately 1/3 of the space
//! in the local-format version of the segment is consumed by pointers."
//! (§4.4)
//!
//! Each lattice node is an InterWeave block holding its item, support
//! count, the full sequence (for query convenience), and two lattice
//! pointers (`first_child`, `next_sibling`) — see [`LATTICE_IDL`]. The
//! publisher updates supports in place (small diffs) and links fresh
//! nodes as the database grows; mining clients walk the pointers under
//! whatever coherence model they choose.

use iw_core::{CoreError, Ptr, SegHandle, Session};
use iw_types::desc::TypeDesc;
use iw_types::idl;

use crate::gen::Item;
use crate::lattice::{Lattice, Seq};

/// Maximum sequence length representable in a shared node.
pub const MAX_SEQ: usize = 4;

/// The IDL for the shared lattice. Nodes carry their full sequence so
/// mining clients can answer queries without walking back to the root;
/// only `support` changes on incremental updates.
pub const LATTICE_IDL: &str = "\
struct lat_node {\n\
    int item;\n\
    int support;\n\
    int seq_len;\n\
    int seq[4];\n\
    struct lat_node *first_child;\n\
    struct lat_node *next_sibling;\n\
};\n\
struct lat_root {\n\
    int customers_seen;\n\
    int node_count;\n\
    struct lat_node *first_child;\n\
};\n";

/// Compiled node type.
pub fn node_type() -> TypeDesc {
    idl::compile(LATTICE_IDL)
        .expect("static IDL compiles")
        .get("lat_node")
        .expect("lat_node declared")
        .clone()
}

/// Compiled root type.
pub fn root_type() -> TypeDesc {
    idl::compile(LATTICE_IDL)
        .expect("static IDL compiles")
        .get("lat_root")
        .expect("lat_root declared")
        .clone()
}

/// Statistics from one publish round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Nodes newly created this round.
    pub added: u32,
    /// Nodes whose support changed this round.
    pub updated: u32,
}

/// The database-server side: owns the mapping from sequences to shared
/// blocks and pushes lattice snapshots into the segment.
#[derive(Debug)]
pub struct LatticePublisher {
    handle: SegHandle,
    root: Ptr,
    nodes: std::collections::HashMap<Seq, Ptr>,
    published_support: std::collections::HashMap<Seq, u32>,
}

impl LatticePublisher {
    /// Creates (or re-creates) the shared lattice root in `segment`.
    ///
    /// # Errors
    ///
    /// Lock and allocation errors from the session.
    pub fn create(session: &mut Session, segment: &str) -> Result<Self, CoreError> {
        let handle = session.open_segment(segment)?;
        session.wl_acquire(&handle)?;
        let root = session.malloc(&handle, &root_type(), 1, Some("root"))?;
        session.wl_release(&handle)?;
        Ok(LatticePublisher {
            handle,
            root,
            nodes: Default::default(),
            published_support: Default::default(),
        })
    }

    /// The segment handle.
    pub fn handle(&self) -> &SegHandle {
        &self.handle
    }

    /// Publishes the current frequent set: in-place support updates for
    /// existing nodes, fresh linked blocks for new ones.
    ///
    /// # Errors
    ///
    /// Lock, allocation, and access errors from the session.
    pub fn publish(
        &mut self,
        session: &mut Session,
        lattice: &Lattice,
    ) -> Result<PublishStats, CoreError> {
        let mut stats = PublishStats::default();
        session.wl_acquire(&self.handle)?;
        let frequent = lattice.frequent(); // parents precede children
        for (seq, support) in &frequent {
            match self.nodes.get(seq) {
                Some(node) => {
                    if self.published_support.get(seq) != Some(support) {
                        let f = session.field(node, "support")?;
                        session.write_i32(&f, *support as i32)?;
                        self.published_support.insert(seq.clone(), *support);
                        stats.updated += 1;
                    }
                }
                None => {
                    let node = session.malloc(&self.handle, &node_type(), 1, None)?;
                    session.write_i32(
                        &session.field(&node, "item")?,
                        *seq.last().expect("non-empty") as i32,
                    )?;
                    session.write_i32(&session.field(&node, "support")?, *support as i32)?;
                    session.write_i32(&session.field(&node, "seq_len")?, seq.len() as i32)?;
                    let seq_arr = session.field(&node, "seq")?;
                    for (k, item) in seq.iter().take(MAX_SEQ).enumerate() {
                        session.write_i32(&session.index(&seq_arr, k as u32)?, *item as i32)?;
                    }
                    // Link at the head of the parent's child list.
                    let parent = if seq.len() == 1 {
                        self.root.clone()
                    } else {
                        self.nodes[&seq[..seq.len() - 1]].clone()
                    };
                    let parent_first = session.field(&parent, "first_child")?;
                    let old_first = session.read_ptr(&parent_first)?;
                    session
                        .write_ptr(&session.field(&node, "next_sibling")?, old_first.as_ref())?;
                    session.write_ptr(&parent_first, Some(&node))?;
                    self.nodes.insert(seq.clone(), node);
                    self.published_support.insert(seq.clone(), *support);
                    stats.added += 1;
                }
            }
        }
        let seen = session.field(&self.root, "customers_seen")?;
        session.write_i32(&seen, lattice.customers_seen() as i32)?;
        let count = session.field(&self.root, "node_count")?;
        session.write_i32(&count, self.nodes.len() as i32)?;
        session.wl_release(&self.handle)?;
        Ok(stats)
    }
}

/// A mining client's view: walks the shared lattice under the session's
/// current coherence model and materializes `(sequence, support)` pairs.
///
/// # Errors
///
/// Lock and access errors from the session.
pub fn read_lattice(session: &mut Session, segment: &str) -> Result<Vec<(Seq, u32)>, CoreError> {
    let handle = session.open_segment(segment)?;
    session.rl_acquire(&handle)?;
    let root = session.mip_to_ptr(&format!("{segment}#root"))?;
    let mut out = Vec::new();
    let first = session.read_ptr(&session.field(&root, "first_child")?)?;
    let mut stack: Vec<(Ptr, Seq)> = Vec::new();
    if let Some(n) = first {
        stack.push((n, Vec::new()));
    }
    while let Some((node, prefix)) = stack.pop() {
        let item = session.read_i32(&session.field(&node, "item")?)? as Item;
        let support = session.read_i32(&session.field(&node, "support")?)? as u32;
        let mut seq = prefix.clone();
        seq.push(item);
        if let Some(sib) = session.read_ptr(&session.field(&node, "next_sibling")?)? {
            stack.push((sib, prefix));
        }
        if let Some(child) = session.read_ptr(&session.field(&node, "first_child")?)? {
            stack.push((child, seq.clone()));
        }
        out.push((seq, support));
    }
    session.rl_release(&handle)?;
    out.sort_unstable_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CustomerSeq;
    use iw_proto::{Handler, Loopback};
    use iw_server::Server;
    use iw_types::MachineArch;
    use std::sync::Arc;

    fn customer(id: u32, items: &[Item]) -> CustomerSeq {
        CustomerSeq {
            id,
            transactions: vec![items.to_vec()],
        }
    }

    fn setup() -> (Session, Session) {
        let srv: Arc<dyn Handler> = Arc::new(Server::new());
        let pubr = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap();
        let sub = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(srv))).unwrap();
        (pubr, sub)
    }

    #[test]
    fn publish_and_read_roundtrip() {
        let (mut p, mut r) = setup();
        let mut lat = Lattice::new(2, 2);
        lat.update(&[
            customer(0, &[1, 2]),
            customer(1, &[1, 2]),
            customer(2, &[1, 3]),
        ]);
        let mut publisher = LatticePublisher::create(&mut p, "mine/lattice").unwrap();
        let stats = publisher.publish(&mut p, &lat).unwrap();
        assert!(stats.added >= 2); // [1] and [1,2] at least

        let got = read_lattice(&mut r, "mine/lattice").unwrap();
        assert_eq!(got, lat.frequent(), "shared view must match the miner");
    }

    #[test]
    fn incremental_publish_updates_in_place() {
        let (mut p, mut r) = setup();
        let mut lat = Lattice::new(2, 1);
        lat.update(&[customer(0, &[7, 8])]);
        let mut publisher = LatticePublisher::create(&mut p, "mine/inc").unwrap();
        let s1 = publisher.publish(&mut p, &lat).unwrap();
        assert_eq!(s1.updated, 0);
        let added_first = s1.added;

        // More of the same sequence: supports rise, no new nodes.
        lat.update(&[customer(1, &[7, 8])]);
        let s2 = publisher.publish(&mut p, &lat).unwrap();
        assert_eq!(s2.added, 0, "no new nodes expected");
        assert_eq!(s2.updated, added_first, "all supports rose");

        let got = read_lattice(&mut r, "mine/inc").unwrap();
        assert_eq!(got, lat.frequent());

        // Publishing an unchanged lattice moves nothing.
        let s3 = publisher.publish(&mut p, &lat).unwrap();
        assert_eq!(s3, PublishStats::default());
    }

    #[test]
    fn pointer_fraction_is_meaningful() {
        // The paper reports ≈1/3 of the local-format lattice segment is
        // pointers; with sequence payloads in each node ours lands a bit
        // lower. Accept a broad sanity band.
        let nt = node_type();
        let arch = MachineArch::x86();
        let total = iw_types::layout::layout_of(&nt, &arch).size as f64;
        let ptr_bytes = 2.0 * 4.0;
        let frac = ptr_bytes / total;
        assert!((0.1..=0.55).contains(&frac), "pointer fraction {frac}");
    }
}
