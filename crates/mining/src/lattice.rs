//! The incremental sequence lattice.
//!
//! "The database server reads from an active, growing database and builds
//! a summary data structure (a lattice of item sequences) to be used by
//! mining queries. Each node in the lattice represents a potentially
//! meaningful sequence of transactions, and contains pointers to other
//! sequences of which it is a prefix." (§4.4)
//!
//! The miner counts contiguous item sequences (n-grams over each
//! customer's flattened purchase stream) up to a length bound. The
//! result is prefix-closed by construction: every prefix of a counted
//! sequence is counted at least as often, so the frequent set always
//! forms a lattice reachable from the root.

use std::collections::HashMap;

use crate::gen::{CustomerSeq, Item};

/// A sequence of items (a lattice node key).
pub type Seq = Vec<Item>;

/// The in-memory summary lattice.
#[derive(Debug, Clone)]
pub struct Lattice {
    counts: HashMap<Seq, u32>,
    max_len: usize,
    min_support: u32,
    customers_seen: u32,
}

impl Lattice {
    /// Creates an empty lattice counting sequences up to `max_len` items,
    /// reporting those with at least `min_support` supporting customers.
    pub fn new(max_len: usize, min_support: u32) -> Self {
        assert!(max_len >= 1, "max_len must be at least 1");
        Lattice {
            counts: HashMap::new(),
            max_len,
            min_support,
            customers_seen: 0,
        }
    }

    /// Number of customers processed so far.
    pub fn customers_seen(&self) -> u32 {
        self.customers_seen
    }

    /// Number of distinct sequences counted (frequent or not).
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// The support of `seq`, if counted.
    pub fn support(&self, seq: &[Item]) -> Option<u32> {
        self.counts.get(seq).copied()
    }

    /// Feeds a batch of customers into the lattice (the incremental
    /// update path: "the server then repeatedly updates the structure
    /// using an additional 1% of the database each time").
    pub fn update(&mut self, customers: &[CustomerSeq]) {
        for c in customers {
            self.customers_seen += 1;
            let stream: Vec<Item> = c
                .transactions
                .iter()
                .flat_map(|t| t.iter().copied())
                .collect();
            // Each distinct n-gram counts once per customer.
            let mut seen: HashMap<&[Item], ()> = HashMap::new();
            for start in 0..stream.len() {
                for len in 1..=self.max_len.min(stream.len() - start) {
                    let gram = &stream[start..start + len];
                    if seen.insert(gram, ()).is_none() {
                        *self.counts.entry(gram.to_vec()).or_insert(0) += 1;
                    }
                }
            }
        }
    }

    /// All frequent sequences with their supports, sorted by (length,
    /// sequence) so parents precede children.
    pub fn frequent(&self) -> Vec<(Seq, u32)> {
        let mut out: Vec<(Seq, u32)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= self.min_support)
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        out.sort_unstable_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
        out
    }

    /// Answers a mining query: the frequent extensions of `prefix`,
    /// most-supported first.
    pub fn extensions(&self, prefix: &[Item]) -> Vec<(Seq, u32)> {
        let mut out: Vec<(Seq, u32)> = self
            .counts
            .iter()
            .filter(|(s, &c)| {
                c >= self.min_support && s.len() == prefix.len() + 1 && s.starts_with(prefix)
            })
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    fn customer(id: u32, txns: &[&[Item]]) -> CustomerSeq {
        CustomerSeq {
            id,
            transactions: txns.iter().map(|t| t.to_vec()).collect(),
        }
    }

    #[test]
    fn counts_ngrams_once_per_customer() {
        let mut l = Lattice::new(2, 1);
        l.update(&[customer(0, &[&[1, 2], &[1, 2]]) /* stream 1 2 1 2 */]);
        assert_eq!(l.support(&[1]), Some(1), "per-customer dedup");
        assert_eq!(l.support(&[1, 2]), Some(1));
        assert_eq!(l.support(&[2, 1]), Some(1));
        assert_eq!(l.support(&[3]), None);
        assert_eq!(l.customers_seen(), 1);
    }

    #[test]
    fn support_accumulates_across_customers() {
        let mut l = Lattice::new(2, 2);
        l.update(&[customer(0, &[&[5, 6]]), customer(1, &[&[5, 6]])]);
        l.update(&[customer(2, &[&[5]])]);
        assert_eq!(l.support(&[5]), Some(3));
        assert_eq!(l.support(&[5, 6]), Some(2));
        let freq = l.frequent();
        assert!(freq.contains(&(vec![5], 3)));
        assert!(freq.contains(&(vec![5, 6], 2)));
        assert!(!freq.iter().any(|(s, _)| s == &vec![6, 5]));
    }

    #[test]
    fn frequent_is_prefix_closed_and_parent_first() {
        let db = generate(&GenConfig::small(3));
        let mut l = Lattice::new(3, 5);
        l.update(&db.customers);
        let freq = l.frequent();
        let set: std::collections::HashSet<&Seq> = freq.iter().map(|(s, _)| s).collect();
        for (i, (s, sup)) in freq.iter().enumerate() {
            if s.len() > 1 {
                let prefix = s[..s.len() - 1].to_vec();
                assert!(set.contains(&prefix), "prefix of {s:?} missing");
                // Parent precedes child in the ordering.
                let pidx = freq.iter().position(|(q, _)| *q == prefix).unwrap();
                assert!(pidx < i);
                // Anti-monotone support.
                let (_, psup) = &freq[pidx];
                assert!(psup >= sup);
            }
        }
    }

    #[test]
    fn extensions_are_ranked() {
        let mut l = Lattice::new(2, 1);
        l.update(&[
            customer(0, &[&[1, 2]]),
            customer(1, &[&[1, 2]]),
            customer(2, &[&[1, 3]]),
        ]);
        let ext = l.extensions(&[1]);
        assert_eq!(ext[0], (vec![1, 2], 2));
        assert_eq!(ext[1], (vec![1, 3], 1));
        assert!(l.extensions(&[9]).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_len")]
    fn zero_max_len_rejected() {
        let _ = Lattice::new(0, 1);
    }
}
