//! # iw-mining — the incremental sequence-mining application
//!
//! The datamining workload of paper §4.4: a QUEST-style synthetic
//! transaction [`gen`]erator, an incremental sequence [`lattice`] miner,
//! and the machinery to [share](shared) the summary lattice through an
//! InterWeave segment — the workload behind the Figure 7 bandwidth
//! experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod lattice;
pub mod shared;

pub use gen::{generate, CustomerSeq, Database, GenConfig, Item};
pub use lattice::{Lattice, Seq};
pub use shared::{read_lattice, LatticePublisher, PublishStats};
