//! Concurrency test: many threads hammering shared counters, gauges, and
//! histograms must lose no updates and never deadlock.

use std::sync::Arc;

use iw_telemetry::Registry;

const THREADS: u64 = 8;
const ITERS: u64 = 10_000;

#[test]
fn concurrent_updates_are_not_lost() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Resolve inside the thread: get-or-create must converge on
                // the same metric no matter the interleaving.
                let counter = registry.counter("hammer.count");
                let gauge = registry.gauge("hammer.level");
                let hist = registry.histogram("hammer.sizes", vec![10, 100, 1000]);
                for i in 0..ITERS {
                    counter.inc();
                    counter.add(2);
                    gauge.add(1);
                    if i % 4 == 1 {
                        gauge.sub(2);
                    }
                    hist.record(t * ITERS + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(THREADS * ITERS * 3));
    // Each thread nets +ITERS/2 on the gauge.
    assert_eq!(
        snap.gauge("hammer.level"),
        Some((THREADS * ITERS / 2) as i64)
    );
    let h = snap.histogram("hammer.sizes").unwrap();
    assert_eq!(h.count, THREADS * ITERS);
    assert_eq!(h.counts.iter().sum::<u64>(), THREADS * ITERS);
    // Sum of 0..THREADS*ITERS.
    let n = THREADS * ITERS;
    assert_eq!(h.sum, n * (n - 1) / 2);
}

#[test]
fn concurrent_histogram_buckets_partition() {
    let registry = Arc::new(Registry::new());
    let hist = registry.histogram_us("hammer.lat");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    hist.record(i % 1024);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * ITERS);
    assert_eq!(snap.counts.iter().sum::<u64>(), THREADS * ITERS);
}
