//! Zero-dependency metrics for InterWeave.
//!
//! The paper's whole evaluation (§4, Figs. 4–7) is about *measuring* hot
//! paths — translation, diffing, swizzling, bandwidth — so the runtime ships
//! a first-class metrics layer every subsystem can instrument against:
//!
//! * [`Counter`] — monotonic, saturating, atomic.
//! * [`Gauge`] — signed instantaneous value.
//! * [`Histogram`] — fixed power-of-two buckets for latencies and sizes,
//!   with a [`Timer`] RAII guard for scoped latency measurement.
//! * [`Registry`] — a named, shareable collection of the above.
//! * [`Snapshot`] — a point-in-time copy that renders as Prometheus text
//!   exposition or as JSON, and that `iw-proto` ships over the wire for
//!   remote scraping (`iwstat`).
//!
//! Everything is plain `std`: atomics for the hot-path types, one `RwLock`
//! around the registry's name map (taken only on first registration and on
//! scrape, never on increment — callers cache the returned `Arc` handles).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// A monotonically increasing atomic counter with saturating arithmetic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (used by the legacy `reset_stats` accessors).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `sub`).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by inclusive upper bounds (`value <= bound`); one
/// implicit overflow bucket catches everything beyond the last bound. Bounds
/// are fixed at construction so recording is a binary search plus one atomic
/// add — cheap enough to leave on in hot paths.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper `bounds`
    /// (must be strictly increasing and non-empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must increase"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Power-of-two bounds `1, 2, 4, … 2^max_exp`.
    pub fn pow2_bounds(max_exp: u32) -> Vec<u64> {
        (0..=max_exp).map(|e| 1u64 << e).collect()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Saturate the running sum so pathological inputs cannot wrap it.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a [`Timer`] that records into `self` when dropped.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// RAII guard recording elapsed wall time (µs) into a [`Histogram`] on drop.
#[derive(Debug)]
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Timer<'_> {
    /// Stops the timer early, recording now instead of at scope end.
    pub fn observe(self) {}
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram_*` are get-or-create: callers resolve a
/// handle once (holding the `Arc`) and then update it lock-free.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<HashMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it when absent.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge named `name`, creating it when absent.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram named `name` with the given bucket bounds,
    /// creating it when absent (existing bounds win on rendezvous).
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: Vec<u64>) -> Arc<Histogram> {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A latency histogram in microseconds (1µs … ~67s, power-of-two).
    pub fn histogram_us(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, Histogram::pow2_bounds(26))
    }

    /// A size histogram in bytes (1B … 1GiB, power-of-two).
    pub fn histogram_bytes(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, Histogram::pow2_bounds(30))
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap.sort();
        snap
    }

    /// Renders the current state in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last = overflow).
    pub counts: Vec<u64>,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Point-in-time copy of a whole [`Registry`] (or several, merged).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name after [`Snapshot::sort`].
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs for gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` pairs for histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Sorts every section by metric name (stable rendering/wire order).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merges `other` into `self` with every name prefixed by `prefix`.
    pub fn merge_prefixed(&mut self, prefix: &str, other: Snapshot) {
        for (n, v) in other.counters {
            self.counters.push((format!("{prefix}{n}"), v));
        }
        for (n, v) in other.gauges {
            self.gauges.push((format!("{prefix}{n}"), v));
        }
        for (n, v) in other.histograms {
            self.histograms.push((format!("{prefix}{n}"), v));
        }
        self.sort();
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Renders as a JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,buckets,overflow}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            for (j, (b, c)) in h.bounds.iter().zip(&h.counts).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{b},{c}]"));
            }
            let overflow = h.counts.last().copied().unwrap_or(0);
            out.push_str(&format!("],\"overflow\":{overflow}}}"));
        }
        out.push_str("}}");
        out
    }

    /// Renders in Prometheus text exposition format. Metric names are
    /// sanitized (`[^a-zA-Z0-9_:]` → `_`); histogram buckets are cumulative
    /// with the usual `_bucket{le=…}` / `_sum` / `_count` triplet.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (n, v) in &self.counters {
            let n = sanitize(n);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (n, v) in &self.gauges {
            let n = sanitize(n);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (n, h) in &self.histograms {
            let n = sanitize(n);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (b, c) in h.bounds.iter().zip(&h.counts) {
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{b}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Renders a human-readable table (the default `iwstat` output).
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(512);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<52} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:<52} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (n, h) in &self.histograms {
                out.push_str(&format!(
                    "  {n:<52} count={} sum={} mean={}\n",
                    h.count,
                    h.sum,
                    h.mean()
                ));
            }
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let c = Counter::new();
        c.add(u64::MAX - 3);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(8);
        assert_eq!(g.get(), -3);
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1023);
        // le=1: {0,1}; le=2: {2}; le=4: {3}; le=8: {8}; overflow: {9,1000}.
        assert_eq!(s.counts, vec![2, 1, 1, 1, 2]);
        assert_eq!(s.mean(), 1023 / 7);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new(Histogram::pow2_bounds(26));
        {
            let _t = h.start_timer();
        }
        h.start_timer().observe();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x.total");
        let b = r.counter("x.total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x.total").get(), 3);
        r.gauge("g").set(-7);
        r.histogram_us("lat").record(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.total"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-7));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clash() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    fn json_and_prometheus_render() {
        let r = Registry::new();
        r.counter("req.total").add(4);
        r.gauge("depth").set(-2);
        let h = r.histogram("sz", vec![1, 2]);
        h.record(1);
        h.record(100);
        let snap = r.snapshot();

        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"req.total\":4},\"gauges\":{\"depth\":-2},\
             \"histograms\":{\"sz\":{\"count\":2,\"sum\":101,\
             \"buckets\":[[1,1],[2,0]],\"overflow\":1}}}"
        );

        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE req_total counter\nreq_total 4\n"));
        assert!(prom.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(prom.contains("sz_bucket{le=\"1\"} 1\n"));
        assert!(prom.contains("sz_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("sz_sum 101\nsz_count 2\n"));

        let text = snap.render_text();
        assert!(text.contains("req.total"));
        assert!(text.contains("mean=50"));
    }

    #[test]
    fn snapshot_merge_prefixed() {
        let a = Registry::new();
        a.counter("x").inc();
        let b = Registry::new();
        b.counter("x").add(5);
        let mut snap = a.snapshot();
        snap.merge_prefixed("server.", b.snapshot());
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.counter("server.x"), Some(5));
    }
}
