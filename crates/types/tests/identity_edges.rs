//! Edge and negative-path tests for `FlatLayout::is_packed` and the
//! wire-identity predicate behind the isomorphic fast path.
//!
//! The negative tests pin one case per mismatch axis — pointer width,
//! endianness, alignment padding, strings — and every assertion runs
//! through both layout engines (the merging `FlatLayout::new` and the
//! ablation `FlatLayout::new_unoptimized`), since a fast path that
//! silently engages across mismatched representations is the classic
//! correctness trap.

use iw_types::arch::MachineArch;
use iw_types::desc::TypeDesc;
use iw_types::flat::{FlatLayout, IsoBlocker, WireIdentity};
use iw_types::testgen::arb_fixed_type;
use proptest::prelude::*;

/// Identity as seen by both layout engines; asserts they agree.
fn identity_both(ty: &TypeDesc, arch: &MachineArch) -> WireIdentity {
    let merged = FlatLayout::new(ty, arch).wire_identity();
    let plain = FlatLayout::new_unoptimized(ty, arch).wire_identity();
    assert_eq!(
        merged, plain,
        "layout engines disagree on {ty:?} for {}",
        arch.name
    );
    merged
}

fn packed_both(ty: &TypeDesc, arch: &MachineArch) -> bool {
    let merged = FlatLayout::new(ty, arch).is_packed();
    let plain = FlatLayout::new_unoptimized(ty, arch).is_packed();
    assert_eq!(
        merged, plain,
        "layout engines disagree on packing of {ty:?} for {}",
        arch.name
    );
    merged
}

// ====================================================================
// Negative paths: one case per mismatch axis.
// ====================================================================

/// Pointer axis: a pointer field blocks identity at *every* pointer
/// width. mips32 is the sharpest case — big-endian, so nothing else
/// diverges — and its 4-byte pointers vs sparc_v9's 8-byte ones cover
/// both widths.
#[test]
fn pointer_fields_block_identity_at_both_widths() {
    let ty = TypeDesc::array(TypeDesc::pointer(), 8);
    for arch in MachineArch::all() {
        assert_eq!(
            identity_both(&ty, &arch),
            WireIdentity::NotIso(IsoBlocker::Pointer),
            "pointer layout must never be isomorphic on {} ({}B pointers)",
            arch.name,
            arch.pointer_size
        );
    }
    // Both widths were actually exercised.
    let widths: Vec<u32> = MachineArch::all().iter().map(|a| a.pointer_size).collect();
    assert!(widths.contains(&4) && widths.contains(&8));
}

/// Endianness axis: the same packed int array is isomorphic on the
/// big-endian architectures and blocked on every little-endian one.
#[test]
fn little_endian_blocks_identity_for_multibyte_prims() {
    let ty = TypeDesc::array(TypeDesc::int32(), 64);
    for arch in MachineArch::all() {
        let want = if arch.endian.is_little() {
            WireIdentity::NotIso(IsoBlocker::Endianness)
        } else {
            WireIdentity::Iso
        };
        assert_eq!(identity_both(&ty, &arch), want, "on {}", arch.name);
        // The layout is packed either way — only the byte order diverges.
        assert!(packed_both(&ty, &arch));
    }
}

/// Padding axis: interior alignment padding blocks identity even on a
/// big-endian architecture where the byte order matches the wire.
#[test]
fn alignment_padding_blocks_identity() {
    let ty = TypeDesc::structure(
        "p",
        vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
    );
    for arch in MachineArch::all() {
        assert_eq!(
            identity_both(&ty, &arch),
            WireIdentity::NotIso(IsoBlocker::Padding),
            "on {}",
            arch.name
        );
        assert!(!packed_both(&ty, &arch));
    }
}

/// String axis: a string is length-prefixed live bytes on the wire but a
/// fixed capacity locally, so it blocks identity everywhere.
#[test]
fn strings_block_identity() {
    let ty = TypeDesc::array(TypeDesc::string(16), 4);
    for arch in MachineArch::all() {
        assert_eq!(
            identity_both(&ty, &arch),
            WireIdentity::NotIso(IsoBlocker::String),
            "on {}",
            arch.name
        );
    }
}

// ====================================================================
// Fuzz-style edges for is_packed / identity.
// ====================================================================

/// A zero-length array field is invisible to packing and identity: the
/// surrounding struct behaves exactly as if the field were absent.
#[test]
fn zero_size_fields_are_transparent() {
    let with = TypeDesc::structure(
        "z",
        vec![
            ("a", TypeDesc::array(TypeDesc::int32(), 0)),
            ("b", TypeDesc::int32()),
            ("c", TypeDesc::array(TypeDesc::char8(), 0)),
        ],
    );
    let without = TypeDesc::structure("z", vec![("b", TypeDesc::int32())]);
    for arch in MachineArch::all() {
        assert_eq!(identity_both(&with, &arch), identity_both(&without, &arch));
        assert_eq!(packed_both(&with, &arch), packed_both(&without, &arch));
        let fl = FlatLayout::new(&with, &arch);
        assert_eq!(fl.prim_count(), 1);
    }
}

/// A zero-length array on its own: zero primitives tile zero bytes, so
/// it is packed and vacuously wire-identical.
#[test]
fn zero_length_array_is_vacuously_iso() {
    let ty = TypeDesc::array(TypeDesc::int64(), 0);
    for arch in MachineArch::all() {
        let fl = FlatLayout::new(&ty, &arch);
        assert_eq!(fl.local_size(), 0);
        assert_eq!(fl.prim_count(), 0);
        assert!(packed_both(&ty, &arch));
        assert_eq!(identity_both(&ty, &arch), WireIdentity::Iso);
    }
}

/// An empty struct occupies one byte locally (C convention) but carries
/// zero primitives — that byte is pure padding, so identity is blocked.
#[test]
fn empty_struct_is_one_padding_byte() {
    let ty = TypeDesc::structure("e", vec![]);
    for arch in MachineArch::all() {
        let fl = FlatLayout::new(&ty, &arch);
        assert_eq!(fl.local_size(), 1);
        assert_eq!(fl.prim_count(), 0);
        assert!(!packed_both(&ty, &arch));
        assert_eq!(
            identity_both(&ty, &arch),
            WireIdentity::NotIso(IsoBlocker::Padding)
        );
    }
}

/// Max-alignment tail: a struct whose widest member forces trailing
/// padding after the last field. The primitives tile the front of the
/// value but not `[0, size)`, so packing — and identity — fail.
#[test]
fn max_alignment_tail_padding_blocks_identity() {
    let ty = TypeDesc::structure(
        "t",
        vec![("d", TypeDesc::float64()), ("c", TypeDesc::char8())],
    );
    // sparc_v9 aligns doubles to 8: 9 bytes of fields pad out to 16.
    let arch = MachineArch::sparc_v9();
    let fl = FlatLayout::new(&ty, &arch);
    assert_eq!(fl.local_size(), 16);
    assert!(!packed_both(&ty, &arch));
    assert_eq!(
        identity_both(&ty, &arch),
        WireIdentity::NotIso(IsoBlocker::Padding)
    );
}

/// Single-byte segments are isomorphic on *every* architecture: byte
/// order is moot at width 1, and chars tile without padding.
#[test]
fn single_byte_layouts_are_iso_everywhere() {
    let plain = TypeDesc::array(TypeDesc::char8(), 4096);
    let nested = TypeDesc::array(
        TypeDesc::structure(
            "b",
            vec![("x", TypeDesc::char8()), ("y", TypeDesc::char8())],
        ),
        32,
    );
    for ty in [&plain, &nested] {
        for arch in MachineArch::all() {
            assert!(packed_both(ty, &arch));
            assert_eq!(identity_both(ty, &arch), WireIdentity::Iso);
        }
    }
}

/// A single primitive is the smallest packed layout; identity then
/// depends only on endianness.
#[test]
fn lone_primitive_identity_matches_endianness() {
    for arch in MachineArch::all() {
        assert_eq!(identity_both(&TypeDesc::char8(), &arch), WireIdentity::Iso);
        let want = if arch.endian.is_little() {
            WireIdentity::NotIso(IsoBlocker::Endianness)
        } else {
            WireIdentity::Iso
        };
        assert_eq!(identity_both(&TypeDesc::int64(), &arch), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random fixed types: identity reduces exactly to
    /// `packed && (big-endian || all prims single-byte)` — the structural
    /// check can neither over- nor under-claim against the definition.
    #[test]
    fn identity_matches_definition_on_fixed_types(ty in arb_fixed_type()) {
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&ty, &arch);
            let all_bytes = fl.iter().all(|p| p.local_size(&arch) == 1);
            let want = if !fl.is_packed() {
                WireIdentity::NotIso(IsoBlocker::Padding)
            } else if arch.endian.is_little() && !all_bytes {
                WireIdentity::NotIso(IsoBlocker::Endianness)
            } else {
                WireIdentity::Iso
            };
            prop_assert_eq!(identity_both(&ty, &arch), want);
        }
    }
}
