//! Property-based tests for the layout engine and flattened layouts.
//!
//! These exercise the invariants diff collection and swizzling rely on:
//! every primitive of a random type tree has a sane, non-overlapping local
//! placement on every architecture, and the seek operations agree with
//! plain iteration.

use iw_types::arch::MachineArch;
use iw_types::flat::{FlatLayout, IsoBlocker, WireIdentity};
use iw_types::layout::{field_offsets, layout_of};
use iw_types::testgen::arb_type;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_size_is_multiple_of_align(ty in arb_type()) {
        for arch in MachineArch::all() {
            let l = layout_of(&ty, &arch);
            prop_assert!(l.align >= 1);
            prop_assert_eq!(l.size % l.align, 0);
        }
    }

    #[test]
    fn field_offsets_are_aligned_and_monotonic(ty in arb_type()) {
        for arch in MachineArch::all() {
            if let iw_types::desc::TypeKind::Struct { fields, .. } = ty.kind() {
                let offs = field_offsets(&ty, &arch);
                prop_assert_eq!(offs.len(), fields.len());
                let mut prev_end = 0u32;
                for (f, off) in fields.iter().zip(&offs) {
                    let fl = layout_of(&f.ty, &arch);
                    prop_assert_eq!(off % fl.align, 0);
                    prop_assert!(*off >= prev_end, "fields overlap");
                    prev_end = off + fl.size;
                }
                prop_assert!(prev_end <= layout_of(&ty, &arch).size);
            }
        }
    }

    #[test]
    fn prims_are_in_bounds_and_non_overlapping(ty in arb_type()) {
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&ty, &arch);
            let mut prev_end = 0u32;
            let mut count = 0u64;
            for p in fl.iter() {
                prop_assert_eq!(p.prim_off, count);
                prop_assert!(p.local_off >= prev_end,
                    "prim {} overlaps previous (arch {})", count, arch.name);
                prev_end = p.local_off + p.local_size(&arch);
                count += 1;
            }
            prop_assert_eq!(count, fl.prim_count());
            prop_assert_eq!(count, ty.prim_count());
            prop_assert!(prev_end <= fl.local_size());
        }
    }

    #[test]
    fn optimized_and_unoptimized_flattenings_agree(ty in arb_type()) {
        for arch in MachineArch::all() {
            let a: Vec<_> = FlatLayout::new(&ty, &arch).iter().collect();
            let b: Vec<_> = FlatLayout::new_unoptimized(&ty, &arch).iter().collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn wire_identity_invariants(ty in arb_type()) {
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&ty, &arch);
            let id = fl.wire_identity();
            // Both layout engines agree on identity.
            prop_assert_eq!(
                id,
                FlatLayout::new_unoptimized(&ty, &arch).wire_identity(),
                "engines disagree on {} for {:?}", arch.name, ty
            );
            if id.is_iso() {
                // Identity implies a packed layout whose wire size equals
                // its local size: the memcpy the fast path performs is
                // length-preserving by construction.
                prop_assert!(fl.is_packed());
                prop_assert_eq!(fl.fixed_wire_size(), Some(u64::from(fl.local_size())));
                prop_assert!(!ty.contains_pointer());
                prop_assert!(!ty.contains_variable());
                // Multi-byte primitives only survive on big-endian archs.
                if arch.endian.is_little() {
                    for p in fl.iter() {
                        prop_assert_eq!(p.local_size(&arch), 1);
                    }
                }
            } else {
                // Every blocker names a real divergence.
                match id.blocker().unwrap() {
                    IsoBlocker::Pointer => prop_assert!(ty.contains_pointer()),
                    IsoBlocker::String => prop_assert!(ty.contains_variable()),
                    IsoBlocker::Padding => prop_assert!(!fl.is_packed()),
                    IsoBlocker::Endianness => {
                        prop_assert!(arch.endian.is_little());
                        prop_assert!(fl.iter().any(|p| p.local_size(&arch) > 1));
                    }
                }
            }
            // A packed, variable-free layout on a big-endian arch must be
            // recognized as isomorphic — the predicate can't under-claim.
            if fl.is_packed()
                && !ty.contains_pointer()
                && !ty.contains_variable()
                && !arch.endian.is_little()
            {
                prop_assert_eq!(id, WireIdentity::Iso);
            }
        }
    }

    #[test]
    fn seek_prim_matches_iteration(ty in arb_type(), frac in 0.0f64..1.0) {
        let arch = MachineArch::x86();
        let fl = FlatLayout::new(&ty, &arch);
        let n = fl.prim_count();
        if n > 0 {
            let target = ((n as f64) * frac) as u64 % n;
            let got: Vec<_> = fl.seek_prim(target).take(4).collect();
            let want: Vec<_> = fl.iter().skip(target as usize).take(4).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn seek_byte_matches_linear_scan(ty in arb_type(), frac in 0.0f64..1.0) {
        for arch in [MachineArch::x86(), MachineArch::sparc_v9()] {
            let fl = FlatLayout::new(&ty, &arch);
            let byte = ((fl.local_size() as f64) * frac) as u32;
            let want = fl
                .iter()
                .find(|p| p.local_off + p.local_size(&arch) > byte);
            let got = fl.seek_byte(byte).next();
            prop_assert_eq!(got, want);
        }
    }
}
