//! Property-based tests for the layout engine and flattened layouts.
//!
//! These exercise the invariants diff collection and swizzling rely on:
//! every primitive of a random type tree has a sane, non-overlapping local
//! placement on every architecture, and the seek operations agree with
//! plain iteration.

use iw_types::arch::MachineArch;
use iw_types::desc::TypeDesc;
use iw_types::flat::FlatLayout;
use iw_types::layout::{field_offsets, layout_of};
use proptest::prelude::*;

/// Strategy producing arbitrary (bounded) type trees.
fn arb_type() -> impl Strategy<Value = TypeDesc> {
    let leaf = prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int16()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::int64()),
        Just(TypeDesc::float32()),
        Just(TypeDesc::float64()),
        (1u32..12).prop_map(TypeDesc::string),
        Just(TypeDesc::pointer()),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            (inner.clone(), 1u32..5).prop_map(|(t, n)| TypeDesc::array(t, n)),
            prop::collection::vec(inner, 1..5).prop_map(|fields| {
                TypeDesc::structure(
                    "s",
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, t)| -> (&str, TypeDesc) {
                            // Leak tiny names; fine for tests.
                            let name: &'static str = Box::leak(format!("f{i}").into_boxed_str());
                            (name, t.clone())
                        })
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_size_is_multiple_of_align(ty in arb_type()) {
        for arch in MachineArch::all() {
            let l = layout_of(&ty, &arch);
            prop_assert!(l.align >= 1);
            prop_assert_eq!(l.size % l.align, 0);
        }
    }

    #[test]
    fn field_offsets_are_aligned_and_monotonic(ty in arb_type()) {
        for arch in MachineArch::all() {
            if let iw_types::desc::TypeKind::Struct { fields, .. } = ty.kind() {
                let offs = field_offsets(&ty, &arch);
                prop_assert_eq!(offs.len(), fields.len());
                let mut prev_end = 0u32;
                for (f, off) in fields.iter().zip(&offs) {
                    let fl = layout_of(&f.ty, &arch);
                    prop_assert_eq!(off % fl.align, 0);
                    prop_assert!(*off >= prev_end, "fields overlap");
                    prev_end = off + fl.size;
                }
                prop_assert!(prev_end <= layout_of(&ty, &arch).size);
            }
        }
    }

    #[test]
    fn prims_are_in_bounds_and_non_overlapping(ty in arb_type()) {
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&ty, &arch);
            let mut prev_end = 0u32;
            let mut count = 0u64;
            for p in fl.iter() {
                prop_assert_eq!(p.prim_off, count);
                prop_assert!(p.local_off >= prev_end,
                    "prim {} overlaps previous (arch {})", count, arch.name);
                prev_end = p.local_off + p.local_size(&arch);
                count += 1;
            }
            prop_assert_eq!(count, fl.prim_count());
            prop_assert_eq!(count, ty.prim_count());
            prop_assert!(prev_end <= fl.local_size());
        }
    }

    #[test]
    fn optimized_and_unoptimized_flattenings_agree(ty in arb_type()) {
        for arch in MachineArch::all() {
            let a: Vec<_> = FlatLayout::new(&ty, &arch).iter().collect();
            let b: Vec<_> = FlatLayout::new_unoptimized(&ty, &arch).iter().collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn seek_prim_matches_iteration(ty in arb_type(), frac in 0.0f64..1.0) {
        let arch = MachineArch::x86();
        let fl = FlatLayout::new(&ty, &arch);
        let n = fl.prim_count();
        if n > 0 {
            let target = ((n as f64) * frac) as u64 % n;
            let got: Vec<_> = fl.seek_prim(target).take(4).collect();
            let want: Vec<_> = fl.iter().skip(target as usize).take(4).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn seek_byte_matches_linear_scan(ty in arb_type(), frac in 0.0f64..1.0) {
        for arch in [MachineArch::x86(), MachineArch::sparc_v9()] {
            let fl = FlatLayout::new(&ty, &arch);
            let byte = ((fl.local_size() as f64) * frac) as u32;
            let want = fl
                .iter()
                .find(|p| p.local_off + p.local_size(&arch) > byte);
            let got = fl.seek_byte(byte).next();
            prop_assert_eq!(got, want);
        }
    }
}
