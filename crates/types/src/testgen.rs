//! Shared property-test generators for random type descriptors
//! (`feature = "testgen"`).
//!
//! Both the `iw-types` and `iw-core` test suites generate random type
//! trees — nested structs, arrays, strings, pointer fields, and the
//! padding that falls out of each architecture's layout rules. Keeping
//! the strategies here means every suite explores the same shape space,
//! and widening it (say, deeper nesting) upgrades all of them at once.
//!
//! Not part of the crate's public API proper: the feature exists for
//! `dev-dependencies` of downstream test suites.

use proptest::prelude::*;

use crate::arch::MachineArch;
use crate::desc::TypeDesc;

/// All primitive leaves, including the variable-length kinds (strings)
/// and pointer fields.
fn leaf_any() -> BoxedStrategy<TypeDesc> {
    prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int16()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::int64()),
        Just(TypeDesc::float32()),
        Just(TypeDesc::float64()),
        (1u32..12).prop_map(TypeDesc::string),
        Just(TypeDesc::pointer()),
    ]
    .boxed()
}

/// Fixed-size primitive leaves only — no strings, no pointers. Types
/// built from these are the candidates for the isomorphic fast path
/// (whether they qualify still depends on padding and endianness).
fn leaf_fixed() -> BoxedStrategy<TypeDesc> {
    prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int16()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::int64()),
        Just(TypeDesc::float32()),
        Just(TypeDesc::float64()),
    ]
    .boxed()
}

/// Wraps `leaf` in up to three levels of arrays and structs.
fn compose(leaf: BoxedStrategy<TypeDesc>) -> impl Strategy<Value = TypeDesc> {
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            (inner.clone(), 1u32..5).prop_map(|(t, n)| TypeDesc::array(t, n)),
            prop::collection::vec(inner, 1..5).prop_map(|fields| {
                TypeDesc::structure(
                    "s",
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, t)| -> (&str, TypeDesc) {
                            // Leak tiny names; fine for tests.
                            let name: &'static str = Box::leak(format!("f{i}").into_boxed_str());
                            (name, t.clone())
                        })
                        .collect(),
                )
            }),
        ]
    })
}

/// Arbitrary bounded type trees over every primitive kind: nested
/// structs, arrays, strings, pointer fields, and whatever padding the
/// target architecture's layout rules introduce.
pub fn arb_type() -> impl Strategy<Value = TypeDesc> {
    compose(leaf_any())
}

/// Arbitrary bounded type trees over fixed-size primitives only (no
/// strings or pointers) — safe targets for raw byte-noise writes, and
/// the population the isomorphic fast path samples from.
pub fn arb_fixed_type() -> impl Strategy<Value = TypeDesc> {
    compose(leaf_fixed())
}

/// One of the five preset architectures, covering both endiannesses and
/// both pointer widths.
pub fn arb_arch() -> impl Strategy<Value = MachineArch> {
    (0usize..MachineArch::all().len()).prop_map(|i| MachineArch::all().swap_remove(i))
}
