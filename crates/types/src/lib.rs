//! # iw-types — type descriptors for InterWeave-rs
//!
//! This crate is the type-system substrate of InterWeave-rs, a Rust
//! reproduction of *"Efficient Distributed Shared State for Heterogeneous
//! Machine Architectures"* (Tang, Chen, Dwarkadas, Scott — ICDCS 2003).
//!
//! It provides:
//!
//! - [`arch`] — descriptions of heterogeneous machine architectures
//!   (endianness, pointer width, alignment rules);
//! - [`desc`] — machine-independent type descriptors, counted in
//!   *primitive data units*;
//! - [`layout`] — the machine-specific layout engine (C struct-layout
//!   rules driven by a [`arch::MachineArch`]);
//! - [`flat`] — flattened translation layouts with the paper's
//!   *isomorphic type descriptor* optimization, used by diff collection,
//!   diff application, and pointer swizzling;
//! - [`idl`] — the IDL compiler that turns interface declarations into
//!   descriptors.
//!
//! # Examples
//!
//! ```
//! use iw_types::arch::MachineArch;
//! use iw_types::flat::FlatLayout;
//! use iw_types::idl::compile;
//!
//! let module = compile("struct point { int x; double w; };")?;
//! let point = module.get("point").unwrap();
//!
//! // The same type has different local layouts on different machines…
//! // (x86 packs the double at offset 4; SPARC pads it to offset 8)
//! let on_x86 = FlatLayout::new(point, &MachineArch::x86());
//! let on_sparc = FlatLayout::new(point, &MachineArch::sparc_v9());
//! assert_eq!(on_x86.local_size(), 12);
//! assert_eq!(on_sparc.local_size(), 16);
//!
//! // …but identical machine-independent shape.
//! assert_eq!(on_x86.prim_count(), on_sparc.prim_count());
//! # Ok::<(), iw_types::idl::IdlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod desc;
pub mod flat;
pub mod idl;
pub mod layout;
#[cfg(feature = "testgen")]
pub mod testgen;

pub use arch::{Endian, MachineArch};
pub use desc::{Field, PrimKind, TypeDesc, TypeKind, TypeSerial};
pub use flat::{
    FlatLayout, FlatNode, IsoBlocker, PrimIter, PrimRef, RunIter, RunRef, WireIdentity,
};
pub use idl::{compile, IdlError, IdlModule};
pub use layout::{field_offsets, field_prim_offsets, layout_of, Layout};
