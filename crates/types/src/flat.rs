//! Flattened translation layouts.
//!
//! Diff collection walks "consecutive type descriptors ... retrieved
//! sequentially to convert the run into wire format" (§3.1). To make that
//! walk fast, the library pre-flattens a block's type descriptor for a given
//! architecture into a [`FlatLayout`]: a compact tree of [`FlatNode`]s where
//! runs of identically-typed, evenly-spaced primitives collapse into a
//! single [`FlatNode::Run`].
//!
//! This collapsing *is* the paper's "isomorphic type descriptors"
//! optimization (§3.3): a struct with 10 consecutive integer fields is
//! represented as a 10-element integer run. Building with
//! [`FlatLayout::new_unoptimized`] disables the merge so the ablation
//! benchmark can measure its benefit.
//!
//! A [`PrimIter`] enumerates `(primitive offset, local byte offset, kind)`
//! triples, and supports seeking by primitive offset (used when applying
//! wire diffs) or by local byte offset (used when collecting diffs from
//! twin comparisons and when swizzling local pointers).

use std::sync::Arc;

use crate::arch::MachineArch;
use crate::desc::{PrimKind, TypeDesc, TypeKind};
use crate::layout::{layout_of, Layout};

/// One node of a flattened layout. Offsets are relative to the enclosing
/// scope (the whole type for top-level nodes, the iteration start inside a
/// [`FlatNode::Repeat`] body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatNode {
    /// `count` primitives of the same kind, spaced `stride` bytes apart.
    Run {
        /// Primitive kind of every element in the run.
        kind: PrimKind,
        /// Number of primitives.
        count: u32,
        /// Local byte offset of the first primitive.
        local_off: u32,
        /// Byte distance between consecutive primitives.
        stride: u32,
        /// Primitive offset of the first primitive.
        prim_off: u64,
    },
    /// `count` repetitions of a heterogeneous body (an array whose element
    /// did not collapse into a single run).
    Repeat {
        /// Number of iterations.
        count: u32,
        /// Local byte offset of iteration 0.
        local_off: u32,
        /// Byte distance between consecutive iterations.
        stride: u32,
        /// Primitive units consumed by one iteration.
        prims_per_iter: u64,
        /// Primitive offset of iteration 0.
        prim_off: u64,
        /// The flattened element layout.
        body: Arc<[FlatNode]>,
    },
}

impl FlatNode {
    fn prim_len(&self) -> u64 {
        match self {
            FlatNode::Run { count, .. } => u64::from(*count),
            FlatNode::Repeat {
                count,
                prims_per_iter,
                ..
            } => u64::from(*count) * prims_per_iter,
        }
    }

    fn prim_off(&self) -> u64 {
        match self {
            FlatNode::Run { prim_off, .. } | FlatNode::Repeat { prim_off, .. } => *prim_off,
        }
    }

    /// Local byte offset of the *end* of the last primitive in this node,
    /// assuming primitives of `kind` occupy `kind.local_size` bytes.
    fn local_end(&self, arch: &MachineArch) -> u32 {
        match self {
            FlatNode::Run {
                kind,
                count,
                local_off,
                stride,
                ..
            } => local_off + (count - 1) * stride + kind.local_size(arch),
            FlatNode::Repeat {
                count,
                local_off,
                stride,
                body,
                ..
            } => {
                let body_end = body.iter().map(|n| n.local_end(arch)).max().unwrap_or(0);
                local_off + (count - 1) * stride + body_end
            }
        }
    }
}

/// A single primitive yielded by a [`PrimIter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimRef {
    /// Machine-independent primitive offset within the block.
    pub prim_off: u64,
    /// Local-format byte offset within the block.
    pub local_off: u32,
    /// Kind of the primitive.
    pub kind: PrimKind,
}

impl PrimRef {
    /// Size in bytes of this primitive in local format on `arch`.
    pub fn local_size(&self, arch: &MachineArch) -> u32 {
        self.kind.local_size(arch)
    }
}

/// The flattened, architecture-specific translation layout of a type.
///
/// # Examples
///
/// ```
/// use iw_types::arch::MachineArch;
/// use iw_types::desc::TypeDesc;
/// use iw_types::flat::FlatLayout;
///
/// // struct of 4 consecutive ints collapses to a single run.
/// let t = TypeDesc::structure(
///     "s",
///     vec![
///         ("a", TypeDesc::int32()),
///         ("b", TypeDesc::int32()),
///         ("c", TypeDesc::int32()),
///         ("d", TypeDesc::int32()),
///     ],
/// );
/// let fl = FlatLayout::new(&t, &MachineArch::x86());
/// assert_eq!(fl.nodes().len(), 1);
/// assert_eq!(fl.prim_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FlatLayout {
    nodes: Arc<[FlatNode]>,
    arch: MachineArch,
    local_size: u32,
    prim_count: u64,
    /// Total wire size in bytes when the type contains no variable-length
    /// primitives; `None` otherwise.
    fixed_wire_size: Option<u64>,
    /// Whether primitives tile `[0, local_size)` with no padding.
    packed: bool,
    /// Whether the local image equals the wire encoding byte for byte
    /// (see [`FlatLayout::wire_identity`]).
    identity: WireIdentity,
}

/// Why a [`FlatLayout`] is *not* byte-identical to its wire encoding.
///
/// The wire format is the canonical packed big-endian encoding, so each
/// blocker names one axis on which the local representation diverges from
/// it. When several axes diverge at once the first in this declaration
/// order is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsoBlocker {
    /// The layout contains pointer fields. A pointer is
    /// [`MachineArch::pointer_size`] local bytes holding a virtual
    /// address, but travels as a variable-length MIP string — no pointer
    /// width makes the two representations equal, so pointer fields
    /// always need element-wise patching.
    Pointer,
    /// The layout contains string fields: a fixed local capacity versus
    /// length-prefixed live bytes on the wire.
    String,
    /// Alignment padding (or trailing struct padding): the primitives do
    /// not tile `[0, local_size)`, so local byte offsets differ from wire
    /// offsets.
    Padding,
    /// The architecture stores multi-byte primitives little-endian; the
    /// wire is big-endian, so every primitive needs a byte swap.
    Endianness,
}

/// Whether a layout's local image is byte-for-byte identical to its wire
/// encoding (the paper's *isomorphic* case), produced by
/// [`FlatLayout::wire_identity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireIdentity {
    /// Local image == wire encoding for every value: translation in
    /// either direction is a plain `memcpy`.
    Iso,
    /// Translation is required; the blocker names the first axis that
    /// breaks identity.
    NotIso(IsoBlocker),
}

impl WireIdentity {
    /// True for [`WireIdentity::Iso`].
    pub fn is_iso(self) -> bool {
        matches!(self, WireIdentity::Iso)
    }

    /// The blocking axis, if any.
    pub fn blocker(self) -> Option<IsoBlocker> {
        match self {
            WireIdentity::Iso => None,
            WireIdentity::NotIso(b) => Some(b),
        }
    }
}

impl FlatLayout {
    /// Flattens `ty` for `arch` with the isomorphic-descriptor merge
    /// enabled (the production configuration).
    pub fn new(ty: &TypeDesc, arch: &MachineArch) -> Self {
        Self::build(ty, arch, true)
    }

    /// Flattens without merging adjacent same-kind fields, for ablation
    /// measurements of the isomorphic-descriptor optimization.
    pub fn new_unoptimized(ty: &TypeDesc, arch: &MachineArch) -> Self {
        Self::build(ty, arch, false)
    }

    fn build(ty: &TypeDesc, arch: &MachineArch, merge: bool) -> Self {
        let mut nodes = Vec::new();
        let mut prim = 0u64;
        flatten(ty, arch, 0, &mut prim, &mut nodes, merge);
        let layout = layout_of(ty, arch);
        let fixed_wire_size = wire_size_of(ty);
        let packed = nodes_packed(&nodes, arch, layout.size);
        let identity = wire_identity_of(&nodes, arch, packed);
        FlatLayout {
            nodes: nodes.into(),
            arch: arch.clone(),
            local_size: layout.size,
            prim_count: prim,
            fixed_wire_size,
            packed,
            identity,
        }
    }

    /// The flattened top-level nodes.
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// The architecture this layout was computed for.
    pub fn arch(&self) -> &MachineArch {
        &self.arch
    }

    /// Local-format size in bytes of one value of the type.
    pub fn local_size(&self) -> u32 {
        self.local_size
    }

    /// Number of primitive units in one value of the type.
    pub fn prim_count(&self) -> u64 {
        self.prim_count
    }

    /// Total wire size in bytes, when fixed (no strings or pointers).
    pub fn fixed_wire_size(&self) -> Option<u64> {
        self.fixed_wire_size
    }

    /// True when the layout's primitives tile `[0, local_size)` back to
    /// back with no padding: every byte of a value belongs to exactly one
    /// primitive, in primitive order. For a packed layout, any contiguous
    /// primitive range fully covers its local byte span — diff
    /// application relies on this to skip pre-filling scratch buffers it
    /// is about to overwrite completely.
    pub fn is_packed(&self) -> bool {
        self.packed
    }

    /// Whether a value's local image equals its wire encoding byte for
    /// byte — the structural layout-identity check behind the isomorphic
    /// fast path. Identity requires all of:
    ///
    /// - no pointer fields (local virtual addresses travel as
    ///   variable-length MIP strings at *any* pointer width);
    /// - no string fields (length-prefixed on the wire);
    /// - a packed layout (field offsets and sizes match the wire's
    ///   back-to-back placement, with no alignment padding);
    /// - matching byte order: the architecture is big-endian, or every
    ///   primitive is a single byte.
    ///
    /// An empty layout (zero primitives, zero bytes) is vacuously
    /// identical. The result is computed once at flatten time, so hot
    /// paths can branch on it per block at no cost.
    ///
    /// # Examples
    ///
    /// ```
    /// use iw_types::arch::MachineArch;
    /// use iw_types::desc::TypeDesc;
    /// use iw_types::flat::{FlatLayout, IsoBlocker};
    ///
    /// let ints = TypeDesc::array(TypeDesc::int32(), 16);
    /// // Big-endian SPARC matches the wire; little-endian x86 does not.
    /// assert!(FlatLayout::new(&ints, &MachineArch::sparc_v9())
    ///     .wire_identity()
    ///     .is_iso());
    /// assert_eq!(
    ///     FlatLayout::new(&ints, &MachineArch::x86())
    ///         .wire_identity()
    ///         .blocker(),
    ///     Some(IsoBlocker::Endianness)
    /// );
    /// ```
    pub fn wire_identity(&self) -> WireIdentity {
        self.identity
    }

    /// Iterates all primitives from the beginning.
    pub fn iter(&self) -> PrimIter<'_> {
        PrimIter::new(self)
    }

    /// Iterates primitives starting at machine-independent offset
    /// `prim_off`. Returns an empty iterator when `prim_off` is past the
    /// end.
    pub fn seek_prim(&self, prim_off: u64) -> PrimIter<'_> {
        let mut it = PrimIter::empty(self);
        if prim_off < self.prim_count {
            it.descend_to_prim(self.nodes.clone(), 0, 0, prim_off);
        }
        it
    }

    /// Iterates primitives starting with the first primitive whose local
    /// extent *ends after* `byte_off` — i.e. the primitive containing
    /// `byte_off`, or the next one when `byte_off` lands in padding.
    pub fn seek_byte(&self, byte_off: u32) -> PrimIter<'_> {
        let mut it = PrimIter::empty(self);
        it.descend_to_byte(self.nodes.clone(), 0, 0, byte_off);
        it
    }

    /// The primitive at machine-independent offset `prim_off`, if in range.
    pub fn prim_at(&self, prim_off: u64) -> Option<PrimRef> {
        self.seek_prim(prim_off).next()
    }

    /// The primitive whose local extent contains `byte_off`, if any.
    /// Offsets in padding or past the end yield `None`.
    pub fn prim_containing_byte(&self, byte_off: u32) -> Option<PrimRef> {
        let p = self.seek_byte(byte_off).next()?;
        (p.local_off <= byte_off).then_some(p)
    }

    /// When the whole layout is one homogeneous run (arrays of a single
    /// primitive kind — the common case for pointer targets), returns it.
    /// Enables arithmetic primitive lookup without tree descent.
    pub fn single_run(&self) -> Option<RunRef> {
        match &self.nodes[..] {
            [FlatNode::Run {
                kind,
                count,
                local_off,
                stride,
                prim_off,
            }] => Some(RunRef {
                prim_off: *prim_off,
                local_off: *local_off,
                stride: *stride,
                count: *count,
                kind: *kind,
            }),
            _ => None,
        }
    }

    /// Iterates maximal same-kind runs from the beginning. Run-granular
    /// iteration is what makes isomorphic descriptors pay off: translation
    /// loops handle whole runs with tight per-kind loops instead of
    /// dispatching per primitive.
    pub fn runs(&self) -> RunIter<'_> {
        RunIter { inner: self.iter() }
    }

    /// Iterates runs starting at machine-independent offset `prim_off`
    /// (the first yielded run may be a tail of a larger run).
    pub fn seek_prim_runs(&self, prim_off: u64) -> RunIter<'_> {
        RunIter {
            inner: self.seek_prim(prim_off),
        }
    }

    /// Iterates runs starting with the first primitive whose local extent
    /// ends after `byte_off`.
    pub fn seek_byte_runs(&self, byte_off: u32) -> RunIter<'_> {
        RunIter {
            inner: self.seek_byte(byte_off),
        }
    }
}

/// A maximal run of identically-typed, evenly spaced primitives yielded
/// by [`RunIter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRef {
    /// Machine-independent primitive offset of the first element.
    pub prim_off: u64,
    /// Local byte offset of the first element.
    pub local_off: u32,
    /// Byte distance between consecutive elements.
    pub stride: u32,
    /// Number of elements in (the rest of) the run.
    pub count: u32,
    /// Kind of every element.
    pub kind: PrimKind,
}

/// Run-granular iterator over a [`FlatLayout`] (see [`FlatLayout::runs`]).
#[derive(Debug, Clone)]
pub struct RunIter<'a> {
    inner: PrimIter<'a>,
}

impl Iterator for RunIter<'_> {
    type Item = RunRef;

    fn next(&mut self) -> Option<RunRef> {
        loop {
            let frame = self.inner.stack.last_mut()?;
            if frame.node_idx >= frame.nodes.len() {
                self.inner.stack.pop();
                continue;
            }
            match &frame.nodes[frame.node_idx] {
                FlatNode::Run {
                    kind,
                    count,
                    local_off,
                    stride,
                    prim_off,
                } => {
                    if frame.iter < *count {
                        let i = frame.iter;
                        let remaining = *count - i;
                        frame.iter = *count;
                        return Some(RunRef {
                            prim_off: frame.base_prim + prim_off + u64::from(i),
                            local_off: frame.base_local + local_off + i * stride,
                            stride: *stride,
                            count: remaining,
                            kind: *kind,
                        });
                    }
                    frame.iter = 0;
                    frame.node_idx += 1;
                }
                FlatNode::Repeat {
                    count,
                    local_off,
                    stride,
                    prims_per_iter,
                    prim_off,
                    body,
                } => {
                    if frame.iter < *count {
                        let i = frame.iter;
                        frame.iter += 1;
                        let base_local = frame.base_local + local_off + i * stride;
                        let base_prim = frame.base_prim + prim_off + u64::from(i) * prims_per_iter;
                        let body = body.clone();
                        self.inner.stack.push(Frame {
                            nodes: body,
                            node_idx: 0,
                            iter: 0,
                            base_local,
                            base_prim,
                        });
                    } else {
                        frame.iter = 0;
                        frame.node_idx += 1;
                    }
                }
            }
        }
    }
}

/// Whether `nodes` tile `[0, span)` back to back: each run's stride
/// equals its element width, each repeat's body tiles its own stride,
/// and consecutive nodes leave no gaps. Checked structurally on the
/// compact node tree, so the cost is O(tree), not O(primitives).
fn nodes_packed(nodes: &[FlatNode], arch: &MachineArch, span: u32) -> bool {
    let mut next = 0u32;
    for n in nodes {
        match n {
            FlatNode::Run {
                kind,
                count,
                local_off,
                stride,
                ..
            } => {
                let width = kind.local_size(arch);
                if *local_off != next || *stride != width {
                    return false;
                }
                next = local_off + count * width;
            }
            FlatNode::Repeat {
                count,
                local_off,
                stride,
                body,
                ..
            } => {
                if *local_off != next || !nodes_packed(body, arch, *stride) {
                    return false;
                }
                next = local_off + count * stride;
            }
        }
    }
    next == span
}

/// Computes [`WireIdentity`] for a flattened node tree: scans the tree
/// once for blocking primitive kinds, then applies the axis precedence
/// documented on [`IsoBlocker`]. O(tree), like [`nodes_packed`].
fn wire_identity_of(nodes: &[FlatNode], arch: &MachineArch, packed: bool) -> WireIdentity {
    fn scan(nodes: &[FlatNode], ptr: &mut bool, string: &mut bool, multi: &mut bool) {
        for n in nodes {
            match n {
                FlatNode::Run { kind, .. } => match kind {
                    PrimKind::Ptr => *ptr = true,
                    PrimKind::Str { .. } => *string = true,
                    PrimKind::Char => {}
                    _ => *multi = true,
                },
                FlatNode::Repeat { body, .. } => scan(body, ptr, string, multi),
            }
        }
    }
    let (mut ptr, mut string, mut multi) = (false, false, false);
    scan(nodes, &mut ptr, &mut string, &mut multi);
    if ptr {
        WireIdentity::NotIso(IsoBlocker::Pointer)
    } else if string {
        WireIdentity::NotIso(IsoBlocker::String)
    } else if !packed {
        WireIdentity::NotIso(IsoBlocker::Padding)
    } else if multi && arch.endian.is_little() {
        WireIdentity::NotIso(IsoBlocker::Endianness)
    } else {
        WireIdentity::Iso
    }
}

/// Wire-format size in bytes of a fixed-size type, or `None` when the type
/// contains variable-length primitives.
fn wire_size_of(ty: &TypeDesc) -> Option<u64> {
    match ty.kind() {
        TypeKind::Prim(p) => p.wire_size().map(u64::from),
        TypeKind::Array { elem, len } => wire_size_of(elem).map(|s| s * u64::from(*len)),
        TypeKind::Struct { fields, .. } => fields.iter().map(|f| wire_size_of(&f.ty)).sum(),
    }
}

fn flatten(
    ty: &TypeDesc,
    arch: &MachineArch,
    local_base: u32,
    prim: &mut u64,
    out: &mut Vec<FlatNode>,
    merge: bool,
) {
    match ty.kind() {
        TypeKind::Prim(p) => {
            push_run(out, *p, 1, local_base, p.local_size(arch), *prim, merge);
            *prim += 1;
        }
        TypeKind::Array { elem, len } => {
            if *len == 0 {
                return;
            }
            let el = layout_of(elem, arch);
            let elem_prims = elem.prim_count();
            // Flatten one element at relative offset 0.
            let mut body = Vec::new();
            let mut p0 = 0u64;
            flatten(elem, arch, 0, &mut p0, &mut body, merge);
            // If the element collapsed to a single run that tiles the whole
            // element stride, the array is itself one big run (isomorphic
            // descriptor).
            if merge && body.len() == 1 {
                if let FlatNode::Run {
                    kind,
                    count,
                    local_off,
                    stride,
                    ..
                } = body[0]
                {
                    let covers = local_off == 0
                        && u64::from(count) * u64::from(stride) == u64::from(el.size);
                    if covers {
                        push_run(out, kind, count * len, local_base, stride, *prim, merge);
                        *prim += elem_prims * u64::from(*len);
                        return;
                    }
                }
            }
            out.push(FlatNode::Repeat {
                count: *len,
                local_off: local_base,
                stride: el.size,
                prims_per_iter: elem_prims,
                prim_off: *prim,
                body: body.into(),
            });
            *prim += elem_prims * u64::from(*len);
        }
        TypeKind::Struct { fields, .. } => {
            let mut off = local_base;
            for f in fields {
                let fl = layout_of(&f.ty, arch);
                off = Layout::align_up(off - local_base, fl.align) + local_base;
                flatten(&f.ty, arch, off, prim, out, merge);
                off += fl.size;
            }
        }
    }
}

/// Appends a run, merging with the previous node when the primitives are of
/// the same kind and evenly spaced (the isomorphic-descriptor merge).
fn push_run(
    out: &mut Vec<FlatNode>,
    kind: PrimKind,
    count: u32,
    local_off: u32,
    stride: u32,
    prim_off: u64,
    merge: bool,
) {
    if merge {
        if let Some(FlatNode::Run {
            kind: pk,
            count: pc,
            local_off: po,
            stride: ps,
            prim_off: pp,
        }) = out.last_mut()
        {
            if *pk == kind && prim_off == *pp + u64::from(*pc) {
                let gap = local_off.wrapping_sub(*po + (*pc - 1) * *ps);
                // A single-element run has no committed stride yet; adopt
                // the gap. Multi-element runs must keep their stride.
                if *pc == 1 && (count == 1 || gap == stride) {
                    *ps = gap;
                    *pc += count;
                    return;
                }
                if gap == *ps && (count == 1 || stride == *ps) {
                    *pc += count;
                    return;
                }
            }
        }
    }
    out.push(FlatNode::Run {
        kind,
        count,
        local_off,
        stride,
        prim_off,
    });
}

/// Iterator over the primitives of a [`FlatLayout`].
#[derive(Debug, Clone)]
pub struct PrimIter<'a> {
    arch: &'a MachineArch,
    stack: Vec<Frame>,
}

#[derive(Debug, Clone)]
struct Frame {
    nodes: Arc<[FlatNode]>,
    node_idx: usize,
    iter: u32,
    base_local: u32,
    base_prim: u64,
}

impl<'a> PrimIter<'a> {
    fn new(fl: &'a FlatLayout) -> Self {
        PrimIter {
            arch: &fl.arch,
            stack: vec![Frame {
                nodes: fl.nodes.clone(),
                node_idx: 0,
                iter: 0,
                base_local: 0,
                base_prim: 0,
            }],
        }
    }

    fn empty(fl: &'a FlatLayout) -> Self {
        PrimIter {
            arch: &fl.arch,
            stack: Vec::new(),
        }
    }

    /// Positions the iterator at absolute primitive offset `target`
    /// (which must be < prim_count of the subtree rooted at `nodes`).
    fn descend_to_prim(
        &mut self,
        nodes: Arc<[FlatNode]>,
        base_local: u32,
        base_prim: u64,
        target: u64,
    ) {
        let rel = target - base_prim;
        // Find the node containing `rel`.
        let idx = match nodes.binary_search_by(|n| {
            if n.prim_off() + n.prim_len() <= rel {
                std::cmp::Ordering::Less
            } else if n.prim_off() > rel {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => unreachable!("target primitive out of node range"),
        };
        match &nodes[idx] {
            FlatNode::Run { prim_off, .. } => {
                let iter = (rel - prim_off) as u32;
                self.stack.push(Frame {
                    nodes: nodes.clone(),
                    node_idx: idx,
                    iter,
                    base_local,
                    base_prim,
                });
            }
            FlatNode::Repeat {
                local_off,
                stride,
                prims_per_iter,
                prim_off,
                body,
                ..
            } => {
                let i = ((rel - prim_off) / prims_per_iter) as u32;
                let child_local = base_local + local_off + i * stride;
                let child_prim = base_prim + prim_off + u64::from(i) * prims_per_iter;
                let body = body.clone();
                self.stack.push(Frame {
                    nodes,
                    node_idx: idx,
                    iter: i + 1,
                    base_local,
                    base_prim,
                });
                self.descend_to_prim(body, child_local, child_prim, target);
            }
        }
    }

    /// Positions the iterator at the first primitive whose local extent
    /// ends after `byte` (absolute). Leaves the stack empty when no such
    /// primitive exists.
    fn descend_to_byte(
        &mut self,
        nodes: Arc<[FlatNode]>,
        base_local: u32,
        base_prim: u64,
        byte: u32,
    ) {
        // Nodes are ordered by local offset for struct fields and arrays.
        // Find the first node whose local end exceeds `byte`.
        let arch = self.arch;
        let idx = nodes.partition_point(|n| base_local + n.local_end(arch) <= byte);
        if idx >= nodes.len() {
            return;
        }
        match &nodes[idx] {
            FlatNode::Run {
                kind,
                count,
                local_off,
                stride,
                prim_off,
            } => {
                let start = base_local + local_off;
                let size = kind.local_size(arch);
                let step = (*stride).max(1);
                let iter = if byte <= start {
                    0
                } else {
                    let k = (byte - start) / step;
                    // Element k may already end at or before `byte`.
                    if start + k * step + size <= byte {
                        k + 1
                    } else {
                        k
                    }
                };
                debug_assert!(iter < *count);
                let _ = prim_off;
                self.stack.push(Frame {
                    nodes: nodes.clone(),
                    node_idx: idx,
                    iter,
                    base_local,
                    base_prim,
                });
            }
            FlatNode::Repeat {
                count,
                local_off,
                stride,
                prims_per_iter,
                prim_off,
                body,
            } => {
                let start = base_local + local_off;
                let i = if byte <= start {
                    0
                } else {
                    ((byte - start) / stride).min(count - 1)
                };
                // The chosen iteration may still end before `byte`
                // (trailing padding); try it, and fall forward if empty.
                for i in i..*count {
                    let child_local = start + i * stride;
                    let child_prim = base_prim + prim_off + u64::from(i) * prims_per_iter;
                    let depth = self.stack.len();
                    self.stack.push(Frame {
                        nodes: nodes.clone(),
                        node_idx: idx,
                        iter: i + 1,
                        base_local,
                        base_prim,
                    });
                    self.descend_to_byte(body.clone(), child_local, child_prim, byte);
                    if self.stack.len() > depth + 1 {
                        return;
                    }
                    // Nothing in this iteration ends after `byte`; undo and
                    // try the next iteration.
                    self.stack.truncate(depth);
                }
                // All iterations exhausted: resume after this node.
                self.stack.push(Frame {
                    nodes,
                    node_idx: idx + 1,
                    iter: 0,
                    base_local,
                    base_prim,
                });
            }
        }
    }
}

impl Iterator for PrimIter<'_> {
    type Item = PrimRef;

    fn next(&mut self) -> Option<PrimRef> {
        loop {
            let frame = self.stack.last_mut()?;
            if frame.node_idx >= frame.nodes.len() {
                self.stack.pop();
                continue;
            }
            // Work around borrow rules: extract what we need first.
            let node = frame.nodes[frame.node_idx].clone();
            match node {
                FlatNode::Run {
                    kind,
                    count,
                    local_off,
                    stride,
                    prim_off,
                } => {
                    if frame.iter < count {
                        let i = frame.iter;
                        frame.iter += 1;
                        return Some(PrimRef {
                            prim_off: frame.base_prim + prim_off + u64::from(i),
                            local_off: frame.base_local + local_off + i * stride,
                            kind,
                        });
                    }
                    frame.iter = 0;
                    frame.node_idx += 1;
                }
                FlatNode::Repeat {
                    count,
                    local_off,
                    stride,
                    prims_per_iter,
                    prim_off,
                    body,
                } => {
                    if frame.iter < count {
                        let i = frame.iter;
                        frame.iter += 1;
                        let base_local = frame.base_local + local_off + i * stride;
                        let base_prim = frame.base_prim + prim_off + u64::from(i) * prims_per_iter;
                        self.stack.push(Frame {
                            nodes: body,
                            node_idx: 0,
                            iter: 0,
                            base_local,
                            base_prim,
                        });
                    } else {
                        frame.iter = 0;
                        frame.node_idx += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x86() -> MachineArch {
        MachineArch::x86()
    }

    #[test]
    fn int_array_is_one_run() {
        let t = TypeDesc::array(TypeDesc::int32(), 1000);
        let fl = FlatLayout::new(&t, &x86());
        assert_eq!(fl.nodes().len(), 1);
        assert!(matches!(
            fl.nodes()[0],
            FlatNode::Run {
                kind: PrimKind::Int32,
                count: 1000,
                stride: 4,
                ..
            }
        ));
        assert_eq!(fl.prim_count(), 1000);
        assert_eq!(fl.local_size(), 4000);
        assert_eq!(fl.fixed_wire_size(), Some(4000));
    }

    #[test]
    fn consecutive_int_fields_merge_isomorphically() {
        let t = TypeDesc::structure(
            "s",
            vec![
                ("a", TypeDesc::int32()),
                ("b", TypeDesc::int32()),
                ("c", TypeDesc::int32()),
            ],
        );
        let fl = FlatLayout::new(&t, &x86());
        assert_eq!(fl.nodes().len(), 1);
        let un = FlatLayout::new_unoptimized(&t, &x86());
        assert_eq!(un.nodes().len(), 3);
        // Both yield the same primitive sequence.
        let a: Vec<_> = fl.iter().collect();
        let b: Vec<_> = un.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn array_of_homogeneous_structs_is_one_run() {
        // struct of 32 ints (the paper's int_struct) tiles perfectly.
        let fields: Vec<(String, TypeDesc)> = (0..32)
            .map(|i| (format!("f{i}"), TypeDesc::int32()))
            .collect();
        let t = TypeDesc::new(TypeKind::Struct {
            name: "int_struct".into(),
            fields: fields
                .into_iter()
                .map(|(name, ty)| crate::desc::Field { name, ty })
                .collect(),
        });
        let arr = TypeDesc::array(t, 100);
        let fl = FlatLayout::new(&arr, &x86());
        assert_eq!(fl.nodes().len(), 1);
        assert_eq!(fl.prim_count(), 3200);
    }

    #[test]
    fn mixed_struct_array_uses_repeat() {
        let t = TypeDesc::structure(
            "m",
            vec![("i", TypeDesc::int32()), ("d", TypeDesc::float64())],
        );
        let arr = TypeDesc::array(t, 4);
        let fl = FlatLayout::new(&arr, &x86());
        assert_eq!(fl.nodes().len(), 1);
        assert!(matches!(fl.nodes()[0], FlatNode::Repeat { count: 4, .. }));
        let prims: Vec<_> = fl.iter().collect();
        assert_eq!(prims.len(), 8);
        // x86: struct size 12 (double 4-aligned): i@0, d@4.
        assert_eq!(prims[0].local_off, 0);
        assert_eq!(prims[1].local_off, 4);
        assert_eq!(prims[2].local_off, 12);
        assert_eq!(prims[3].local_off, 16);
        assert_eq!(prims[2].prim_off, 2);
    }

    #[test]
    fn iteration_order_is_prim_order() {
        let t = TypeDesc::structure(
            "m",
            vec![
                ("c", TypeDesc::char8()),
                ("i", TypeDesc::int32()),
                ("a", TypeDesc::array(TypeDesc::int16(), 3)),
                ("p", TypeDesc::pointer()),
            ],
        );
        let fl = FlatLayout::new(&t, &x86());
        let prims: Vec<_> = fl.iter().collect();
        assert_eq!(prims.len(), 6);
        for (i, p) in prims.iter().enumerate() {
            assert_eq!(p.prim_off, i as u64);
        }
        assert_eq!(prims[0].kind, PrimKind::Char);
        assert_eq!(prims[1].local_off, 4); // int after padding
        assert_eq!(prims[2].local_off, 8); // shorts
        assert_eq!(prims[4].local_off, 12);
        assert_eq!(prims[5].kind, PrimKind::Ptr);
        assert_eq!(prims[5].local_off, 16);
    }

    #[test]
    fn seek_prim_positions_exactly() {
        let t = TypeDesc::array(
            TypeDesc::structure(
                "m",
                vec![("i", TypeDesc::int32()), ("d", TypeDesc::float64())],
            ),
            100,
        );
        let fl = FlatLayout::new(&t, &x86());
        for target in [0u64, 1, 2, 7, 100, 137, 199] {
            let got: Vec<_> = fl.seek_prim(target).take(3).collect();
            let want: Vec<_> = fl.iter().skip(target as usize).take(3).collect();
            assert_eq!(got, want, "seek to {target}");
        }
        assert_eq!(fl.seek_prim(200).next(), None);
        assert_eq!(fl.seek_prim(10_000).next(), None);
    }

    #[test]
    fn seek_byte_finds_containing_or_next() {
        let t = TypeDesc::structure(
            "m",
            vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
        );
        let fl = FlatLayout::new(&t, &x86());
        // byte 0 -> char
        assert_eq!(fl.seek_byte(0).next().unwrap().kind, PrimKind::Char);
        // byte 1..3 are padding -> int at 4
        for b in 1..=4 {
            let p = fl.seek_byte(b).next().unwrap();
            assert_eq!(p.kind, PrimKind::Int32);
            assert_eq!(p.local_off, 4);
        }
        // middle of the int still returns the int
        assert_eq!(fl.seek_byte(6).next().unwrap().local_off, 4);
        // past the end
        assert_eq!(fl.seek_byte(8).next(), None);
    }

    #[test]
    fn seek_byte_into_array_elements() {
        let t = TypeDesc::array(TypeDesc::int32(), 10);
        let fl = FlatLayout::new(&t, &x86());
        let p = fl.seek_byte(17).next().unwrap();
        assert_eq!(p.local_off, 16);
        assert_eq!(p.prim_off, 4);
        let p = fl.seek_byte(20).next().unwrap();
        assert_eq!(p.local_off, 20);
    }

    #[test]
    fn seek_byte_skips_trailing_padding_of_iteration() {
        // struct {double d; char c;} has 3 bytes padding per element on x86.
        let t = TypeDesc::array(
            TypeDesc::structure(
                "s",
                vec![("d", TypeDesc::float64()), ("c", TypeDesc::char8())],
            ),
            3,
        );
        let fl = FlatLayout::new(&t, &x86());
        // stride 12; element 0: d@0..8, c@8..9, pad 9..12.
        let p = fl.seek_byte(9).next().unwrap();
        assert_eq!(p.local_off, 12, "padding should skip to next element");
        assert_eq!(p.kind, PrimKind::Float64);
        // Also exactly at the end of data.
        assert_eq!(fl.seek_byte(33).next(), None);
    }

    #[test]
    fn prim_containing_byte_rejects_padding() {
        let t = TypeDesc::structure(
            "m",
            vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
        );
        let fl = FlatLayout::new(&t, &x86());
        assert!(fl.prim_containing_byte(0).is_some());
        assert!(fl.prim_containing_byte(2).is_none());
        assert_eq!(fl.prim_containing_byte(5).unwrap().local_off, 4);
        assert!(fl.prim_containing_byte(100).is_none());
    }

    #[test]
    fn strings_and_pointers_make_wire_size_variable() {
        let t = TypeDesc::structure(
            "m",
            vec![("s", TypeDesc::string(8)), ("i", TypeDesc::int32())],
        );
        let fl = FlatLayout::new(&t, &x86());
        assert_eq!(fl.fixed_wire_size(), None);
        let t2 = TypeDesc::array(TypeDesc::float64(), 7);
        assert_eq!(FlatLayout::new(&t2, &x86()).fixed_wire_size(), Some(56));
    }

    #[test]
    fn pointer_size_tracks_arch_in_flat_layout() {
        let t = TypeDesc::array(TypeDesc::pointer(), 4);
        let fl32 = FlatLayout::new(&t, &MachineArch::x86());
        let fl64 = FlatLayout::new(&t, &MachineArch::alpha());
        assert_eq!(fl32.local_size(), 16);
        assert_eq!(fl64.local_size(), 32);
    }

    #[test]
    fn empty_array_yields_no_prims() {
        let t = TypeDesc::array(TypeDesc::int32(), 0);
        let fl = FlatLayout::new(&t, &x86());
        assert_eq!(fl.iter().count(), 0);
        assert_eq!(fl.prim_count(), 0);
        assert_eq!(fl.seek_byte(0).next(), None);
    }

    #[test]
    fn exhaustive_seek_consistency_on_nested_type() {
        // Nested: array of struct { char tag; int v[3]; string<5> s; }
        let t = TypeDesc::array(
            TypeDesc::structure(
                "n",
                vec![
                    ("tag", TypeDesc::char8()),
                    ("v", TypeDesc::array(TypeDesc::int32(), 3)),
                    ("s", TypeDesc::string(5)),
                ],
            ),
            5,
        );
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&t, &arch);
            let all: Vec<_> = fl.iter().collect();
            assert_eq!(all.len() as u64, fl.prim_count());
            // seek_prim at every index matches suffix of full iteration.
            for (i, _) in all.iter().enumerate() {
                let got: Vec<_> = fl.seek_prim(i as u64).collect();
                assert_eq!(&got[..], &all[i..], "arch {} prim {}", arch.name, i);
            }
            // seek_byte at every byte is the first prim ending after it.
            for byte in 0..fl.local_size() {
                let expect = all
                    .iter()
                    .find(|p| p.local_off + p.local_size(&arch) > byte)
                    .copied();
                let got = fl.seek_byte(byte).next();
                assert_eq!(got, expect, "arch {} byte {}", arch.name, byte);
            }
        }
    }
}

#[cfg(test)]
mod run_iter_tests {
    use super::*;

    #[test]
    fn runs_cover_exactly_the_prims() {
        let t = TypeDesc::array(
            TypeDesc::structure(
                "m",
                vec![
                    ("c", TypeDesc::char8()),
                    ("v", TypeDesc::array(TypeDesc::int32(), 3)),
                ],
            ),
            7,
        );
        for arch in MachineArch::all() {
            let fl = FlatLayout::new(&t, &arch);
            let prims: Vec<PrimRef> = fl.iter().collect();
            let mut from_runs = Vec::new();
            for r in fl.runs() {
                for k in 0..r.count {
                    from_runs.push(PrimRef {
                        prim_off: r.prim_off + u64::from(k),
                        local_off: r.local_off + k * r.stride,
                        kind: r.kind,
                    });
                }
            }
            assert_eq!(from_runs, prims, "arch {}", arch.name);
        }
    }

    #[test]
    fn seek_prim_runs_yields_run_tail() {
        let t = TypeDesc::array(TypeDesc::int32(), 100);
        let fl = FlatLayout::new(&t, &MachineArch::x86());
        let r = fl.seek_prim_runs(37).next().unwrap();
        assert_eq!(r.prim_off, 37);
        assert_eq!(r.count, 63);
        assert_eq!(r.local_off, 148);
        assert_eq!(r.stride, 4);
    }

    #[test]
    fn seek_byte_runs_matches_seek_byte() {
        let t = TypeDesc::array(
            TypeDesc::structure(
                "s",
                vec![("d", TypeDesc::float64()), ("c", TypeDesc::char8())],
            ),
            4,
        );
        let fl = FlatLayout::new(&t, &MachineArch::x86());
        for byte in 0..fl.local_size() {
            let via_prim = fl.seek_byte(byte).next();
            let via_run = fl.seek_byte_runs(byte).next().map(|r| PrimRef {
                prim_off: r.prim_off,
                local_off: r.local_off,
                kind: r.kind,
            });
            assert_eq!(via_run, via_prim, "byte {byte}");
        }
    }

    #[test]
    fn whole_array_is_single_run() {
        let t = TypeDesc::array(TypeDesc::float64(), 500);
        let fl = FlatLayout::new(&t, &MachineArch::alpha());
        let runs: Vec<RunRef> = fl.runs().collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].count, 500);
    }
}
