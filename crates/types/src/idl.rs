//! The InterWeave interface description language (IDL).
//!
//! "As in multi-language RPC systems, the types of shared data in InterWeave
//! must be declared in an interface description language. The InterWeave IDL
//! compiler translates these declarations into the appropriate programming
//! language(s) ... It also creates initialized type descriptors that specify
//! the layout of the types on the specified machine." (§2.1)
//!
//! This module is that compiler, minus the language-binding code generation
//! (the host language here is always Rust, and access goes through the typed
//! accessor API): it parses a C-flavoured IDL and produces machine-
//! independent [`TypeDesc`] values. Machine-specific layout is computed on
//! demand by [`crate::layout`] / [`crate::flat`].
//!
//! # Grammar
//!
//! ```text
//! file      := (constdef | typedef | structdef)*
//! constdef  := "const" IDENT "=" NUM ";"
//! typedef   := "typedef" type declarator ";"
//! structdef := "struct" IDENT "{" (type declarator ";")* "}" ";"
//! type      := "char" | "short" | "int" | "hyper" | "float" | "double"
//!            | "string" "<" size ">" | "struct" IDENT | IDENT
//! declarator:= "*"* IDENT ("<" size ">")? ("[" size "]")*
//! size      := NUM | IDENT            (a previously declared const)
//! ```
//!
//! Pointers are fully opaque (`T*` compiles to a pointer primitive): the
//! pointee's type is discovered at swizzle time from the pointed-to block's
//! own descriptor, which is what lets recursive types like the paper's
//! linked list work without cyclic descriptors.
//!
//! # Examples
//!
//! ```
//! use iw_types::idl::compile;
//!
//! let module = compile(
//!     "struct node { int key; struct node *next; };",
//! ).unwrap();
//! let node = module.get("node").unwrap();
//! assert_eq!(node.prim_count(), 2);
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::desc::TypeDesc;

/// A compiled IDL module: an ordered collection of named types and
/// constants.
#[derive(Debug, Clone, Default)]
pub struct IdlModule {
    names: Vec<String>,
    types: BTreeMap<String, TypeDesc>,
    consts: BTreeMap<String, u64>,
}

impl IdlModule {
    /// Looks up a type by name.
    pub fn get(&self, name: &str) -> Option<&TypeDesc> {
        self.types.get(name)
    }

    /// The declared type names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterates `(name, descriptor)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TypeDesc)> {
        self.names.iter().map(move |n| (n.as_str(), &self.types[n]))
    }

    /// Looks up a declared constant.
    pub fn constant(&self, name: &str) -> Option<u64> {
        self.consts.get(name).copied()
    }

    fn insert(&mut self, name: String, ty: TypeDesc) -> Result<(), String> {
        if self.types.contains_key(&name) {
            return Err(format!("duplicate type name `{name}`"));
        }
        self.names.push(name.clone());
        self.types.insert(name, ty);
        Ok(())
    }
}

/// An error produced while compiling IDL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "idl error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for IdlError {}

/// Compiles IDL source text into an [`IdlModule`].
///
/// # Errors
///
/// Returns an [`IdlError`] (with line/column) on lexical errors, syntax
/// errors, references to undefined types, duplicate definitions, or
/// zero-capacity strings.
pub fn compile(src: &str) -> Result<IdlModule, IdlError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        module: IdlModule::default(),
    }
    .parse()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Spanned>, IdlError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let (mut line, mut col) = (1u32, 1u32);
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }
    loop {
        let (l0, c0) = (line, col);
        let Some(&c) = chars.peek() else { break };
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '/' {
            // Comment or error.
            bump!();
            match chars.peek() {
                Some('/') => {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                }
                Some('*') => {
                    bump!();
                    let mut closed = false;
                    while let Some(c) = bump!() {
                        if c == '*' {
                            if let Some('/') = chars.peek() {
                                bump!();
                                closed = true;
                                break;
                            }
                        }
                    }
                    if !closed {
                        return Err(IdlError {
                            line: l0,
                            col: c0,
                            message: "unterminated block comment".into(),
                        });
                    }
                }
                _ => {
                    return Err(IdlError {
                        line: l0,
                        col: c0,
                        message: "unexpected `/`".into(),
                    })
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    bump!();
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                line: l0,
                col: c0,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while let Some(&c) = chars.peek() {
                if let Some(d) = c.to_digit(10) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d)))
                        .ok_or(IdlError {
                            line: l0,
                            col: c0,
                            message: "integer literal overflow".into(),
                        })?;
                    bump!();
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Num(n),
                line: l0,
                col: c0,
            });
            continue;
        }
        if "{}[]<>*;,=".contains(c) {
            bump!();
            out.push(Spanned {
                tok: Tok::Punct(c),
                line: l0,
                col: c0,
            });
            continue;
        }
        return Err(IdlError {
            line: l0,
            col: c0,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    module: IdlModule,
}

/// Base type parsed before a declarator; `StrPending` marks XDR-style
/// `string name<N>` whose capacity follows the identifier.
enum BaseTy {
    Ty(TypeDesc),
    StrPending,
}

impl Parser {
    fn parse(mut self) -> Result<IdlModule, IdlError> {
        while self.pos < self.tokens.len() {
            let t = self.peek_ident()?;
            match t.as_str() {
                "typedef" => self.typedef()?,
                "struct" => self.structdef()?,
                "const" => self.constdef()?,
                other => {
                    return Err(self.err_here(format!(
                        "expected `typedef`, `struct`, or `const`, found `{other}`"
                    )))
                }
            }
        }
        Ok(self.module)
    }

    fn err_here(&self, message: String) -> IdlError {
        let (line, col) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        IdlError { line, col, message }
    }

    fn err_eof(&self) -> IdlError {
        let (line, col) = self
            .tokens
            .last()
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        IdlError {
            line,
            col,
            message: "unexpected end of input".into(),
        }
    }

    fn next(&mut self) -> Result<Spanned, IdlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err_eof())?;
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek_ident(&self) -> Result<String, IdlError> {
        match self.peek() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            Some(t) => Err(self.err_here(format!("expected identifier, found {t:?}"))),
            None => Err(self.err_eof()),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), IdlError> {
        match self.next()?.tok {
            Tok::Punct(p) if p == c => Ok(()),
            t => Err(self.err_here(format!("expected `{c}`, found {t:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, IdlError> {
        match self.next()?.tok {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err_here(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_num(&mut self) -> Result<u64, IdlError> {
        match self.next()?.tok {
            Tok::Num(n) => Ok(n),
            t => Err(self.err_here(format!("expected number, found {t:?}"))),
        }
    }

    fn constdef(&mut self) -> Result<(), IdlError> {
        self.expect_ident()?; // "const"
        let name = self.expect_ident()?;
        // Accept both `const N = 5;` and XDR-ish `const N 5;`.
        if let Some(Tok::Punct('=')) = self.peek() {
            self.next()?;
        }
        let value = self.expect_num()?;
        self.expect_punct(';')?;
        if self.module.consts.contains_key(&name) {
            return Err(self.err_here(format!("duplicate const `{name}`")));
        }
        self.module.consts.insert(name, value);
        Ok(())
    }

    /// Parses a size: a number or a previously declared constant.
    fn expect_size(&mut self) -> Result<u64, IdlError> {
        match self.next()?.tok {
            Tok::Num(n) => Ok(n),
            Tok::Ident(name) => self
                .module
                .consts
                .get(&name)
                .copied()
                .ok_or_else(|| self.err_here(format!("undefined const `{name}`"))),
            t => Err(self.err_here(format!("expected size, found {t:?}"))),
        }
    }

    fn typedef(&mut self) -> Result<(), IdlError> {
        self.expect_ident()?; // "typedef"
        let base = self.base_type()?;
        let (name, ty) = self.declarator(base)?;
        self.expect_punct(';')?;
        self.module.insert(name, ty).map_err(|m| self.err_here(m))
    }

    fn structdef(&mut self) -> Result<(), IdlError> {
        self.expect_ident()?; // "struct"
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut fields: Vec<(String, TypeDesc)> = Vec::new();
        loop {
            if let Some(Tok::Punct('}')) = self.peek() {
                self.next()?;
                break;
            }
            let base = self.base_type()?;
            let (fname, fty) = self.declarator(base)?;
            if fields.iter().any(|(n, _)| *n == fname) {
                return Err(self.err_here(format!("duplicate field `{fname}` in struct `{name}`")));
            }
            fields.push((fname, fty));
            self.expect_punct(';')?;
        }
        self.expect_punct(';')?;
        let ty = TypeDesc::structure(
            name.clone(),
            fields
                .iter()
                .map(|(n, t)| (n.as_str(), t.clone()))
                .collect(),
        );
        self.module.insert(name, ty).map_err(|m| self.err_here(m))
    }

    /// Parses `"<" size ">"`, validating the capacity.
    fn string_cap(&mut self) -> Result<u32, IdlError> {
        self.expect_punct('<')?;
        let cap = self.expect_size()?;
        self.expect_punct('>')?;
        if cap == 0 || cap > u64::from(u32::MAX) {
            return Err(self.err_here(format!("string capacity {cap} out of range")));
        }
        Ok(cap as u32)
    }

    /// Parses the base type (everything before the declarator).
    fn base_type(&mut self) -> Result<BaseTy, IdlError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "char" => Ok(BaseTy::Ty(TypeDesc::char8())),
            "short" => Ok(BaseTy::Ty(TypeDesc::int16())),
            "int" => Ok(BaseTy::Ty(TypeDesc::int32())),
            "hyper" => Ok(BaseTy::Ty(TypeDesc::int64())),
            "float" => Ok(BaseTy::Ty(TypeDesc::float32())),
            "double" => Ok(BaseTy::Ty(TypeDesc::float64())),
            "string" => {
                // Two accepted spellings: `string<N> name` and the
                // XDR-style `string name<N>`. The latter is resolved in
                // `declarator` via the pending marker.
                if let Some(Tok::Punct('<')) = self.peek() {
                    let cap = self.string_cap()?;
                    Ok(BaseTy::Ty(TypeDesc::string(cap)))
                } else {
                    Ok(BaseTy::StrPending)
                }
            }
            "struct" => {
                let sname = self.expect_ident()?;
                // By-value use requires the definition, unless the
                // declarator turns out to be a pointer (the base type is
                // then discarded — pointees resolve at swizzle time).
                if let Some(Tok::Punct('*')) = self.peek() {
                    return Ok(BaseTy::Ty(TypeDesc::structure(sname, vec![])));
                }
                self.module
                    .get(&sname)
                    .cloned()
                    .map(BaseTy::Ty)
                    .ok_or_else(|| self.err_here(format!("undefined struct `{sname}`")))
            }
            other => self
                .module
                .get(other)
                .cloned()
                .map(BaseTy::Ty)
                .ok_or_else(|| self.err_here(format!("undefined type `{other}`"))),
        }
    }

    /// Parses `"*"* IDENT ("<" NUM ">")? ("[" NUM "]")*` and applies it to
    /// `base`. The `<N>` capacity suffix is the XDR-style string spelling
    /// and is required exactly when the base type was `string` without an
    /// inline capacity.
    fn declarator(&mut self, base: BaseTy) -> Result<(String, TypeDesc), IdlError> {
        let mut stars = 0u32;
        while let Some(Tok::Punct('*')) = self.peek() {
            self.next()?;
            stars += 1;
        }
        let name = self.expect_ident()?;
        let base = match base {
            BaseTy::Ty(t) => t,
            BaseTy::StrPending => {
                if stars > 0 {
                    // `string *p;` — a pointer; capacity suffix not allowed.
                    TypeDesc::string(1)
                } else {
                    let cap = self.string_cap()?;
                    TypeDesc::string(cap)
                }
            }
        };
        let mut dims = Vec::new();
        while let Some(Tok::Punct('[')) = self.peek() {
            self.next()?;
            let n = self.expect_size()?;
            if n > u64::from(u32::MAX) {
                return Err(self.err_here(format!("array length {n} out of range")));
            }
            self.expect_punct(']')?;
            dims.push(n as u32);
        }
        let mut ty = if stars > 0 { TypeDesc::pointer() } else { base };
        for &d in dims.iter().rev() {
            ty = TypeDesc::array(ty, d);
        }
        Ok((name, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MachineArch;
    use crate::desc::{PrimKind, TypeKind};
    use crate::layout::layout_of;

    #[test]
    fn paper_linked_list_node() {
        let m = compile("struct node { int key; struct node *next; };").unwrap();
        let node = m.get("node").unwrap();
        let TypeKind::Struct { fields, .. } = node.kind() else {
            panic!("expected struct")
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].ty.as_prim(), Some(PrimKind::Int32));
        assert_eq!(fields[1].ty.as_prim(), Some(PrimKind::Ptr));
    }

    #[test]
    fn typedefs_and_arrays() {
        let m = compile(
            "typedef double vec3[3];\n\
             struct particle { vec3 pos; vec3 vel; int id; };",
        )
        .unwrap();
        let v = m.get("vec3").unwrap();
        assert_eq!(v.prim_count(), 3);
        let p = m.get("particle").unwrap();
        assert_eq!(p.prim_count(), 7);
        assert_eq!(layout_of(p, &MachineArch::alpha()).size, 56);
    }

    #[test]
    fn multidimensional_arrays_outermost_first() {
        let m = compile("typedef int mat[2][3];").unwrap();
        let t = m.get("mat").unwrap();
        let TypeKind::Array { elem, len } = t.kind() else {
            panic!()
        };
        assert_eq!(*len, 2);
        let TypeKind::Array { len: inner, .. } = elem.kind() else {
            panic!()
        };
        assert_eq!(*inner, 3);
    }

    #[test]
    fn strings_and_pointers() {
        let m = compile("struct rec { string name<256>; string tag<4>; int *vals[8]; };").unwrap();
        let r = m.get("rec").unwrap();
        let (_, f) = r.field("name").unwrap();
        assert_eq!(f.ty.as_prim(), Some(PrimKind::Str { cap: 256 }));
        let (_, f) = r.field("vals").unwrap();
        // int *vals[8] is an array of 8 pointers.
        let TypeKind::Array { elem, len: 8 } = f.ty.kind() else {
            panic!()
        };
        assert_eq!(elem.as_prim(), Some(PrimKind::Ptr));
    }

    #[test]
    fn comments_are_skipped() {
        let m = compile(
            "// leading comment\n\
             struct s { /* inline */ int a; // trailing\n };",
        )
        .unwrap();
        assert!(m.get("s").is_some());
    }

    #[test]
    fn nested_struct_by_value_requires_definition() {
        let err = compile("struct a { struct b inner; };").unwrap_err();
        assert!(err.message.contains("undefined struct `b`"), "{err}");
        let ok = compile("struct b { int x; };\nstruct a { struct b inner; };").unwrap();
        assert_eq!(ok.get("a").unwrap().prim_count(), 1);
    }

    #[test]
    fn pointer_to_undefined_struct_is_fine() {
        // Forward/self references through pointers must not need the def.
        let m = compile("struct a { struct later *p; };").unwrap();
        assert_eq!(m.get("a").unwrap().prim_count(), 1);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = compile("struct s { int a;\n  bogus b; };").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("undefined type `bogus`"));
        assert!(err.to_string().contains("idl error at 2:"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = compile("struct s { int a; };\nstruct s { int b; };").unwrap_err();
        assert!(err.message.contains("duplicate type name"));
        let err = compile("struct s { int a; int a; };").unwrap_err();
        assert!(err.message.contains("duplicate field"));
    }

    #[test]
    fn lexical_errors() {
        assert!(compile("struct s { int a; } %").is_err());
        assert!(compile("/* unterminated").is_err());
        assert!(compile("/ odd").is_err());
        let err = compile("typedef string<0> s;").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn declaration_order_preserved() {
        let m = compile("typedef int a; typedef int b; struct c { int x; };").unwrap();
        assert_eq!(m.names(), &["a", "b", "c"]);
        let collected: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn eof_mid_declaration() {
        assert!(compile("struct s { int").is_err());
        assert!(compile("typedef").is_err());
        assert!(compile("struct").is_err());
    }

    #[test]
    fn consts_size_arrays_and_strings() {
        let m = compile(
            "const GRID = 16;\n\
             const NAME_LEN = 32;\n\
             struct tile { double cells[GRID]; string label<NAME_LEN>; };",
        )
        .unwrap();
        assert_eq!(m.constant("GRID"), Some(16));
        assert_eq!(m.constant("NOPE"), None);
        let t = m.get("tile").unwrap();
        assert_eq!(t.prim_count(), 17);
        let (_, f) = t.field("label").unwrap();
        assert_eq!(f.ty.as_prim(), Some(crate::desc::PrimKind::Str { cap: 32 }));
    }

    #[test]
    fn const_errors() {
        assert!(compile("const A = 1; const A = 2;")
            .unwrap_err()
            .message
            .contains("duplicate const"));
        assert!(compile("struct s { int v[UNDEF]; };")
            .unwrap_err()
            .message
            .contains("undefined const"));
    }

    #[test]
    fn paper_figure4_types_compile() {
        // The 9 data mixes of Figure 4, as IDL.
        let m = compile(
            "struct int_struct { int f[32]; };\n\
             struct double_struct { double f[32]; };\n\
             struct int_double { int i; double d; };\n\
             struct mix { int i; double d; string s<256>; string t<4>; int *p; };",
        )
        .unwrap();
        assert_eq!(m.get("int_struct").unwrap().prim_count(), 32);
        assert_eq!(m.get("mix").unwrap().prim_count(), 5);
    }
}
