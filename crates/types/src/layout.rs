//! The layout engine: machine-specific sizes, alignments, and field offsets.
//!
//! The paper's type descriptors record "both the byte offset of each field
//! from the beginning of the structure in local format, and the
//! machine-independent primitive offset of each field" (§3.1). This module
//! computes the local-format side for a given [`MachineArch`] using C
//! structure-layout rules: each field is placed at the next offset aligned
//! to its alignment, and the structure size is rounded up to the structure's
//! own alignment (the maximum field alignment).

use crate::arch::MachineArch;
use crate::desc::{TypeDesc, TypeKind};

/// Local-format size and alignment of a type on some architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Size in bytes, always a multiple of `align` (so array stride == size).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
}

impl Layout {
    /// Rounds `off` up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero (alignments are always ≥ 1).
    pub fn align_up(off: u32, align: u32) -> u32 {
        assert!(align > 0, "alignment must be non-zero");
        off.div_ceil(align) * align
    }
}

/// Computes the local-format [`Layout`] of `ty` on `arch`.
///
/// # Examples
///
/// ```
/// use iw_types::arch::MachineArch;
/// use iw_types::desc::TypeDesc;
/// use iw_types::layout::layout_of;
///
/// let t = TypeDesc::structure(
///     "s",
///     vec![("c", TypeDesc::char8()), ("d", TypeDesc::float64())],
/// );
/// // x86 aligns double to 4 bytes; alpha to 8.
/// assert_eq!(layout_of(&t, &MachineArch::x86()).size, 12);
/// assert_eq!(layout_of(&t, &MachineArch::alpha()).size, 16);
/// ```
pub fn layout_of(ty: &TypeDesc, arch: &MachineArch) -> Layout {
    match ty.kind() {
        TypeKind::Prim(p) => Layout {
            size: p.local_size(arch),
            align: p.local_align(arch),
        },
        TypeKind::Array { elem, len } => {
            let el = layout_of(elem, arch);
            Layout {
                size: el.size * len,
                align: el.align,
            }
        }
        TypeKind::Struct { fields, .. } => {
            let mut off = 0u32;
            let mut align = 1u32;
            for f in fields {
                let fl = layout_of(&f.ty, arch);
                off = Layout::align_up(off, fl.align) + fl.size;
                align = align.max(fl.align);
            }
            Layout {
                size: Layout::align_up(off.max(1), align),
                align,
            }
        }
    }
}

/// Byte offsets of each field of a struct type on `arch`, in declaration
/// order. Returns an empty vector for non-struct types.
pub fn field_offsets(ty: &TypeDesc, arch: &MachineArch) -> Vec<u32> {
    let TypeKind::Struct { fields, .. } = ty.kind() else {
        return Vec::new();
    };
    let mut offs = Vec::with_capacity(fields.len());
    let mut off = 0u32;
    for f in fields {
        let fl = layout_of(&f.ty, arch);
        off = Layout::align_up(off, fl.align);
        offs.push(off);
        off += fl.size;
    }
    offs
}

/// Machine-independent primitive offsets of each field of a struct type, in
/// declaration order. Returns an empty vector for non-struct types.
pub fn field_prim_offsets(ty: &TypeDesc) -> Vec<u64> {
    let TypeKind::Struct { fields, .. } = ty.kind() else {
        return Vec::new();
    };
    let mut offs = Vec::with_capacity(fields.len());
    let mut off = 0u64;
    for f in fields {
        offs.push(off);
        off += f.ty.prim_count();
    }
    offs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::TypeDesc;

    #[test]
    fn align_up_basics() {
        assert_eq!(Layout::align_up(0, 4), 0);
        assert_eq!(Layout::align_up(1, 4), 4);
        assert_eq!(Layout::align_up(4, 4), 4);
        assert_eq!(Layout::align_up(5, 8), 8);
        assert_eq!(Layout::align_up(17, 1), 17);
    }

    #[test]
    #[should_panic(expected = "alignment must be non-zero")]
    fn align_up_zero_panics() {
        let _ = Layout::align_up(3, 0);
    }

    #[test]
    fn primitive_layouts_track_arch() {
        let x86 = MachineArch::x86();
        let alpha = MachineArch::alpha();
        assert_eq!(layout_of(&TypeDesc::pointer(), &x86).size, 4);
        assert_eq!(layout_of(&TypeDesc::pointer(), &alpha).size, 8);
        assert_eq!(layout_of(&TypeDesc::float64(), &x86).align, 4);
        assert_eq!(layout_of(&TypeDesc::float64(), &alpha).align, 8);
        assert_eq!(layout_of(&TypeDesc::string(13), &x86).size, 13);
        assert_eq!(layout_of(&TypeDesc::string(13), &x86).align, 1);
    }

    #[test]
    fn struct_padding_differs_across_archs() {
        // struct { int i; double d; char c; }
        let t = TypeDesc::structure(
            "s",
            vec![
                ("i", TypeDesc::int32()),
                ("d", TypeDesc::float64()),
                ("c", TypeDesc::char8()),
            ],
        );
        let x86 = MachineArch::x86();
        let sparc = MachineArch::sparc_v9();
        // x86: i@0, d@4 (4-aligned), c@12 -> size 16 (align 4)
        assert_eq!(field_offsets(&t, &x86), vec![0, 4, 12]);
        assert_eq!(layout_of(&t, &x86), Layout { size: 16, align: 4 });
        // sparc: i@0, d@8, c@16 -> size 24 (align 8)
        assert_eq!(field_offsets(&t, &sparc), vec![0, 8, 16]);
        assert_eq!(layout_of(&t, &sparc), Layout { size: 24, align: 8 });
    }

    #[test]
    fn array_stride_equals_elem_size() {
        let t = TypeDesc::array(TypeDesc::int16(), 5);
        let l = layout_of(&t, &MachineArch::x86());
        assert_eq!(l, Layout { size: 10, align: 2 });
    }

    #[test]
    fn struct_size_is_multiple_of_align() {
        // struct { double d; char c; } must pad to 16 on natural-alignment
        // machines so arrays of it stay aligned.
        let t = TypeDesc::structure(
            "s",
            vec![("d", TypeDesc::float64()), ("c", TypeDesc::char8())],
        );
        let l = layout_of(&t, &MachineArch::alpha());
        assert_eq!(l, Layout { size: 16, align: 8 });
        let l32 = layout_of(&t, &MachineArch::x86());
        assert_eq!(l32, Layout { size: 12, align: 4 });
    }

    #[test]
    fn empty_struct_occupies_one_byte() {
        let t = TypeDesc::structure("e", vec![]);
        let l = layout_of(&t, &MachineArch::x86());
        assert_eq!(l.size, 1);
    }

    #[test]
    fn prim_offsets_are_machine_independent() {
        let t = TypeDesc::structure(
            "s",
            vec![
                ("i", TypeDesc::int32()),
                ("a", TypeDesc::array(TypeDesc::char8(), 7)),
                ("d", TypeDesc::float64()),
            ],
        );
        assert_eq!(field_prim_offsets(&t), vec![0, 1, 8]);
        assert!(field_offsets(&TypeDesc::int32(), &MachineArch::x86()).is_empty());
        assert!(field_prim_offsets(&TypeDesc::int32()).is_empty());
    }

    #[test]
    fn nested_struct_layout() {
        let inner = TypeDesc::structure(
            "inner",
            vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
        );
        let outer = TypeDesc::structure("outer", vec![("c", TypeDesc::char8()), ("in", inner)]);
        let x86 = MachineArch::x86();
        // inner: c@0, i@4 -> size 8 align 4. outer: c@0, in@4 -> size 12.
        assert_eq!(field_offsets(&outer, &x86), vec![0, 4]);
        assert_eq!(layout_of(&outer, &x86).size, 12);
    }
}
