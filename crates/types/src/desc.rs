//! Machine-independent type descriptors.
//!
//! InterWeave declares shared data types in an IDL (see [`crate::idl`]); the
//! IDL compiler produces *type descriptors* that the client library uses to
//! translate between local (machine-specific) format and wire format, and to
//! swizzle pointers. A descriptor specifies the substructure and layout of
//! its type: primitives have pre-defined descriptors; derived types are
//! arrays, records, pointers, or strings, recursively.
//!
//! Offsets in machine-independent pointers (MIPs) and in wire-format diffs
//! are measured in *primitive data units* — characters, integers, floats,
//! strings, pointers — rather than in bytes, so that clients with different
//! in-memory layouts agree on positions. [`TypeDesc::prim_count`] gives the
//! number of primitive units occupied by a value of a type.

use std::fmt;
use std::sync::Arc;

/// The primitive data kinds understood by the translation machinery.
///
/// Each variant is exactly one *primitive data unit* for the purpose of
/// machine-independent offsets, including variable-length strings and
/// pointers (a pointer travels on the wire as a MIP string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimKind {
    /// 8-bit character / byte.
    Char,
    /// 16-bit signed integer.
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// IEEE 754 single-precision float.
    Float32,
    /// IEEE 754 double-precision float.
    Float64,
    /// NUL-terminated string with a fixed local capacity in bytes
    /// (variable-length on the wire).
    Str {
        /// Local-format capacity in bytes, including the terminating NUL.
        cap: u32,
    },
    /// A pointer to shared data; locally a machine address, on the wire a
    /// MIP string.
    Ptr,
}

impl PrimKind {
    /// Size in bytes of this primitive in *local* format on `arch`.
    pub fn local_size(self, arch: &crate::arch::MachineArch) -> u32 {
        match self {
            PrimKind::Char => 1,
            PrimKind::Int16 => 2,
            PrimKind::Int32 => 4,
            PrimKind::Int64 => 8,
            PrimKind::Float32 => 4,
            PrimKind::Float64 => 8,
            PrimKind::Str { cap } => cap,
            PrimKind::Ptr => arch.pointer_size,
        }
    }

    /// Alignment in bytes of this primitive in local format on `arch`.
    pub fn local_align(self, arch: &crate::arch::MachineArch) -> u32 {
        match self {
            PrimKind::Char => 1,
            PrimKind::Int16 => arch.int16_align,
            PrimKind::Int32 => arch.int32_align,
            PrimKind::Int64 => arch.int64_align,
            PrimKind::Float32 => arch.float32_align,
            PrimKind::Float64 => arch.float64_align,
            PrimKind::Str { .. } => 1,
            PrimKind::Ptr => arch.pointer_align,
        }
    }

    /// Size in bytes of this primitive in wire format, or `None` when it is
    /// variable-length (strings and pointers).
    pub fn wire_size(self) -> Option<u32> {
        match self {
            PrimKind::Char => Some(1),
            PrimKind::Int16 => Some(2),
            PrimKind::Int32 => Some(4),
            PrimKind::Int64 => Some(8),
            PrimKind::Float32 => Some(4),
            PrimKind::Float64 => Some(8),
            PrimKind::Str { .. } | PrimKind::Ptr => None,
        }
    }

    /// `true` for the variable-length kinds (strings and pointers), which
    /// servers store out-of-line (paper §3.2).
    pub fn is_variable(self) -> bool {
        self.wire_size().is_none()
    }
}

impl fmt::Display for PrimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimKind::Char => f.write_str("char"),
            PrimKind::Int16 => f.write_str("short"),
            PrimKind::Int32 => f.write_str("int"),
            PrimKind::Int64 => f.write_str("hyper"),
            PrimKind::Float32 => f.write_str("float"),
            PrimKind::Float64 => f.write_str("double"),
            PrimKind::Str { cap } => write!(f, "string<{cap}>"),
            PrimKind::Ptr => f.write_str("pointer"),
        }
    }
}

/// A field of a [`TypeKind::Struct`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name as declared in the IDL.
    pub name: String,
    /// Field type.
    pub ty: TypeDesc,
}

/// The shape of a type: a primitive, or one of the derived forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// A primitive data unit.
    Prim(PrimKind),
    /// A fixed-length array of a single element type.
    Array {
        /// Element type.
        elem: TypeDesc,
        /// Number of elements.
        len: u32,
    },
    /// A record with named, typed fields.
    Struct {
        /// Record name as declared in the IDL.
        name: String,
        /// Fields in declaration order.
        fields: Vec<Field>,
    },
}

/// A machine-independent type descriptor.
///
/// Descriptors are immutable and cheaply cloneable (reference counted), so a
/// recursive structure type (`struct node { struct node *next; }`) is
/// expressed as a `Ptr` primitive — the pointee's descriptor is resolved at
/// swizzle time from segment metadata, never followed during translation —
/// which keeps descriptors acyclic.
///
/// # Examples
///
/// ```
/// use iw_types::desc::TypeDesc;
///
/// let node = TypeDesc::structure(
///     "node",
///     vec![("key", TypeDesc::int32()), ("next", TypeDesc::pointer())],
/// );
/// assert_eq!(node.prim_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeDesc {
    kind: Arc<TypeKind>,
}

impl TypeDesc {
    /// Builds a descriptor from a [`TypeKind`].
    pub fn new(kind: TypeKind) -> Self {
        TypeDesc {
            kind: Arc::new(kind),
        }
    }

    /// The pre-defined descriptor for `char`.
    pub fn char8() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Char))
    }

    /// The pre-defined descriptor for 16-bit `short`.
    pub fn int16() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Int16))
    }

    /// The pre-defined descriptor for 32-bit `int`.
    pub fn int32() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Int32))
    }

    /// The pre-defined descriptor for 64-bit `hyper`.
    pub fn int64() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Int64))
    }

    /// The pre-defined descriptor for `float`.
    pub fn float32() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Float32))
    }

    /// The pre-defined descriptor for `double`.
    pub fn float64() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Float64))
    }

    /// A string with local capacity `cap` bytes (including the NUL).
    pub fn string(cap: u32) -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Str { cap }))
    }

    /// A pointer to shared data.
    pub fn pointer() -> Self {
        TypeDesc::new(TypeKind::Prim(PrimKind::Ptr))
    }

    /// An array of `len` elements of type `elem`.
    pub fn array(elem: TypeDesc, len: u32) -> Self {
        TypeDesc::new(TypeKind::Array { elem, len })
    }

    /// A structure named `name` with the given `(field name, type)` pairs.
    pub fn structure<N: Into<String>>(name: N, fields: Vec<(&str, TypeDesc)>) -> Self {
        TypeDesc::new(TypeKind::Struct {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, ty)| Field {
                    name: n.to_string(),
                    ty,
                })
                .collect(),
        })
    }

    /// The underlying [`TypeKind`].
    pub fn kind(&self) -> &TypeKind {
        &self.kind
    }

    /// Number of primitive data units a value of this type occupies.
    ///
    /// This is the unit in which MIP offsets and wire-format diff runs are
    /// measured.
    pub fn prim_count(&self) -> u64 {
        match self.kind() {
            TypeKind::Prim(_) => 1,
            TypeKind::Array { elem, len } => elem.prim_count() * u64::from(*len),
            TypeKind::Struct { fields, .. } => fields.iter().map(|f| f.ty.prim_count()).sum(),
        }
    }

    /// `true` if this type is a single primitive.
    pub fn is_prim(&self) -> bool {
        matches!(self.kind(), TypeKind::Prim(_))
    }

    /// If this is a primitive type, its kind.
    pub fn as_prim(&self) -> Option<PrimKind> {
        match self.kind() {
            TypeKind::Prim(p) => Some(*p),
            _ => None,
        }
    }

    /// `true` if any primitive within this type is a pointer.
    pub fn contains_pointer(&self) -> bool {
        match self.kind() {
            TypeKind::Prim(p) => *p == PrimKind::Ptr,
            TypeKind::Array { elem, .. } => elem.contains_pointer(),
            TypeKind::Struct { fields, .. } => fields.iter().any(|f| f.ty.contains_pointer()),
        }
    }

    /// `true` if any primitive within this type is variable-length on the
    /// wire (string or pointer).
    pub fn contains_variable(&self) -> bool {
        match self.kind() {
            TypeKind::Prim(p) => p.is_variable(),
            TypeKind::Array { elem, .. } => elem.contains_variable(),
            TypeKind::Struct { fields, .. } => fields.iter().any(|f| f.ty.contains_variable()),
        }
    }

    /// Looks up a struct field by name, returning `(index, &Field)`.
    pub fn field(&self, name: &str) -> Option<(usize, &Field)> {
        match self.kind() {
            TypeKind::Struct { fields, .. } => {
                fields.iter().enumerate().find(|(_, f)| f.name == name)
            }
            _ => None,
        }
    }
}

impl fmt::Display for TypeDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            TypeKind::Prim(p) => write!(f, "{p}"),
            TypeKind::Array { elem, len } => write!(f, "{elem}[{len}]"),
            TypeKind::Struct { name, .. } => write!(f, "struct {name}"),
        }
    }
}

/// Serial number of a type descriptor within a segment.
///
/// Like blocks, type descriptors have segment-specific serial numbers used by
/// the server and client in wire-format messages (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TypeSerial(pub u32);

impl fmt::Display for TypeSerial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MachineArch;

    fn mix_struct() -> TypeDesc {
        TypeDesc::structure(
            "mix",
            vec![
                ("i", TypeDesc::int32()),
                ("d", TypeDesc::float64()),
                ("s", TypeDesc::string(16)),
                ("p", TypeDesc::pointer()),
            ],
        )
    }

    #[test]
    fn prim_counts() {
        assert_eq!(TypeDesc::int32().prim_count(), 1);
        assert_eq!(TypeDesc::string(256).prim_count(), 1);
        assert_eq!(TypeDesc::array(TypeDesc::float64(), 10).prim_count(), 10);
        assert_eq!(mix_struct().prim_count(), 4);
        assert_eq!(TypeDesc::array(mix_struct(), 5).prim_count(), 20);
    }

    #[test]
    fn nested_prim_count() {
        let inner =
            TypeDesc::structure("inner", vec![("a", TypeDesc::array(TypeDesc::char8(), 3))]);
        let outer = TypeDesc::structure(
            "outer",
            vec![("x", inner.clone()), ("y", TypeDesc::array(inner, 2))],
        );
        assert_eq!(outer.prim_count(), 9);
    }

    #[test]
    fn pointer_and_variable_detection() {
        assert!(mix_struct().contains_pointer());
        assert!(mix_struct().contains_variable());
        assert!(!TypeDesc::int32().contains_pointer());
        assert!(TypeDesc::string(4).contains_variable());
        assert!(!TypeDesc::array(TypeDesc::float64(), 8).contains_variable());
    }

    #[test]
    fn field_lookup() {
        let m = mix_struct();
        let (idx, f) = m.field("s").expect("field s");
        assert_eq!(idx, 2);
        assert_eq!(f.ty.as_prim(), Some(PrimKind::Str { cap: 16 }));
        assert!(m.field("zzz").is_none());
        assert!(TypeDesc::int32().field("i").is_none());
    }

    #[test]
    fn local_sizes_differ_by_arch() {
        let p = PrimKind::Ptr;
        assert_eq!(p.local_size(&MachineArch::x86()), 4);
        assert_eq!(p.local_size(&MachineArch::alpha()), 8);
        assert_eq!(PrimKind::Float64.local_align(&MachineArch::x86()), 4);
        assert_eq!(PrimKind::Float64.local_align(&MachineArch::sparc_v9()), 8);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(PrimKind::Int32.wire_size(), Some(4));
        assert_eq!(PrimKind::Float64.wire_size(), Some(8));
        assert_eq!(PrimKind::Str { cap: 9 }.wire_size(), None);
        assert_eq!(PrimKind::Ptr.wire_size(), None);
        assert!(PrimKind::Ptr.is_variable());
        assert!(!PrimKind::Char.is_variable());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TypeDesc::int32().to_string(), "int");
        assert_eq!(
            TypeDesc::array(TypeDesc::float64(), 3).to_string(),
            "double[3]"
        );
        assert_eq!(mix_struct().to_string(), "struct mix");
        assert_eq!(TypeDesc::string(8).to_string(), "string<8>");
        assert_eq!(TypeSerial(7).to_string(), "t7");
    }

    #[test]
    fn descriptors_compare_structurally() {
        assert_eq!(mix_struct(), mix_struct());
        assert_ne!(mix_struct(), TypeDesc::int32());
    }
}
