//! Machine architecture descriptions.
//!
//! InterWeave shares data among *heterogeneous* machines: different byte
//! orders, word sizes, pointer widths, and alignment rules. The paper's
//! implementation ran on Alpha, Sparc, x86, and MIPS. In this reproduction a
//! [`MachineArch`] drives an explicit layout engine (see
//! [`crate::layout`]), so a single test process can host clients with
//! different simulated architectures and exchange wire-format data between
//! them, exactly as real InterWeave clients on different hardware would.

use std::fmt;

/// Byte order of a machine architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endian {
    /// Least-significant byte first (x86, Alpha).
    Little,
    /// Most-significant byte first (SPARC, MIPS in the paper's testbed).
    Big,
}

impl Endian {
    /// Returns `true` for [`Endian::Little`].
    ///
    /// # Examples
    ///
    /// ```
    /// use iw_types::arch::Endian;
    /// assert!(Endian::Little.is_little());
    /// assert!(!Endian::Big.is_little());
    /// ```
    pub fn is_little(self) -> bool {
        matches!(self, Endian::Little)
    }
}

impl fmt::Display for Endian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endian::Little => f.write_str("little-endian"),
            Endian::Big => f.write_str("big-endian"),
        }
    }
}

/// A machine architecture: sizes, alignments, byte order, and pointer width.
///
/// All sizes and alignments are in bytes. The local (in-memory) format of
/// every shared block is computed from one of these descriptions by the
/// layout engine; the wire format is architecture-independent.
///
/// # Examples
///
/// ```
/// use iw_types::arch::MachineArch;
///
/// let x86 = MachineArch::x86();
/// let sparc = MachineArch::sparc_v9();
/// assert_ne!(x86.pointer_size, sparc.pointer_size);
/// assert_ne!(x86.endian, sparc.endian);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineArch {
    /// Human-readable architecture name (e.g. `"x86"`).
    pub name: &'static str,
    /// Byte order.
    pub endian: Endian,
    /// Size of a pointer in bytes (4 or 8).
    pub pointer_size: u32,
    /// Alignment of a pointer in bytes.
    pub pointer_align: u32,
    /// Alignment of a 16-bit integer.
    pub int16_align: u32,
    /// Alignment of a 32-bit integer.
    pub int32_align: u32,
    /// Alignment of a 64-bit integer.
    pub int64_align: u32,
    /// Alignment of a 32-bit float.
    pub float32_align: u32,
    /// Alignment of a 64-bit float. Classic i386 ABIs use 4 here, which is
    /// one of the heterogeneity hazards InterWeave must absorb.
    pub float64_align: u32,
    /// Machine word size in bytes, used by the twin/diff comparison loop
    /// (the paper compares pages "word-by-word").
    pub word_size: u32,
}

impl MachineArch {
    /// 32-bit x86 (i386 System V ABI): little-endian, 4-byte pointers, and
    /// notably only 4-byte alignment for `double`.
    pub fn x86() -> Self {
        MachineArch {
            name: "x86",
            endian: Endian::Little,
            pointer_size: 4,
            pointer_align: 4,
            int16_align: 2,
            int32_align: 4,
            int64_align: 4,
            float32_align: 4,
            float64_align: 4,
            word_size: 4,
        }
    }

    /// 64-bit x86-64 (System V ABI): little-endian, 8-byte pointers,
    /// natural alignment everywhere.
    pub fn x86_64() -> Self {
        MachineArch {
            name: "x86_64",
            endian: Endian::Little,
            pointer_size: 8,
            pointer_align: 8,
            int16_align: 2,
            int32_align: 4,
            int64_align: 8,
            float32_align: 4,
            float64_align: 8,
            word_size: 8,
        }
    }

    /// DEC Alpha (LP64): little-endian, 8-byte pointers, natural alignment.
    /// One of the four architectures in the paper's testbed.
    pub fn alpha() -> Self {
        MachineArch {
            name: "alpha",
            endian: Endian::Little,
            pointer_size: 8,
            pointer_align: 8,
            int16_align: 2,
            int32_align: 4,
            int64_align: 8,
            float32_align: 4,
            float64_align: 8,
            word_size: 8,
        }
    }

    /// SPARC V9 (LP64): big-endian, 8-byte pointers, natural alignment.
    pub fn sparc_v9() -> Self {
        MachineArch {
            name: "sparc_v9",
            endian: Endian::Big,
            pointer_size: 8,
            pointer_align: 8,
            int16_align: 2,
            int32_align: 4,
            int64_align: 8,
            float32_align: 4,
            float64_align: 8,
            word_size: 8,
        }
    }

    /// 32-bit MIPS (o32, big-endian configuration): 4-byte pointers,
    /// 8-byte-aligned doubles.
    pub fn mips32() -> Self {
        MachineArch {
            name: "mips32",
            endian: Endian::Big,
            pointer_size: 4,
            pointer_align: 4,
            int16_align: 2,
            int32_align: 4,
            int64_align: 8,
            float32_align: 4,
            float64_align: 8,
            word_size: 4,
        }
    }

    /// All built-in architectures, useful for exhaustive cross-architecture
    /// tests.
    pub fn all() -> Vec<MachineArch> {
        vec![
            MachineArch::x86(),
            MachineArch::x86_64(),
            MachineArch::alpha(),
            MachineArch::sparc_v9(),
            MachineArch::mips32(),
        ]
    }

    /// The architecture matching the paper's evaluation machine
    /// (500 MHz Pentium III running Linux): [`MachineArch::x86`].
    pub fn paper_default() -> Self {
        MachineArch::x86()
    }
}

impl Default for MachineArch {
    fn default() -> Self {
        MachineArch::paper_default()
    }
}

impl fmt::Display for MachineArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}-bit pointers)",
            self.name,
            self.endian,
            self.pointer_size * 8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let all = MachineArch::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn x86_double_alignment_is_relaxed() {
        assert_eq!(MachineArch::x86().float64_align, 4);
        assert_eq!(MachineArch::alpha().float64_align, 8);
    }

    #[test]
    fn endianness_mix_is_represented() {
        let all = MachineArch::all();
        assert!(all.iter().any(|a| a.endian == Endian::Little));
        assert!(all.iter().any(|a| a.endian == Endian::Big));
    }

    #[test]
    fn pointer_sizes_cover_32_and_64_bits() {
        let all = MachineArch::all();
        assert!(all.iter().any(|a| a.pointer_size == 4));
        assert!(all.iter().any(|a| a.pointer_size == 8));
    }

    #[test]
    fn display_is_informative() {
        let s = MachineArch::sparc_v9().to_string();
        assert!(s.contains("sparc"));
        assert!(s.contains("big-endian"));
        assert!(s.contains("64-bit"));
    }

    #[test]
    fn default_is_paper_machine() {
        assert_eq!(MachineArch::default(), MachineArch::x86());
    }
}
