//! # iw-server — the InterWeave server
//!
//! Server side of InterWeave-rs (the ICDCS'03 InterWeave reproduction):
//!
//! - [`wirestore`] — blocks stored in wire format, with variable-length
//!   strings/MIPs out-of-line (§3.2);
//! - [`segment`] — per-segment versioning: the `svr_blk_number_tree`, the
//!   `blk_version_list` with markers, per-subblock version arrays, diff
//!   application/construction, the diff cache, Diff-coherence counters,
//!   and last-block prediction;
//! - [`locks`] — reader/writer lock table;
//! - [`server`] — the protocol front-end implementing
//!   [`iw_proto::Handler`];
//! - [`checkpoint`] — periodic persistence and recovery;
//! - durability — committed diffs WAL-logged at release time via
//!   `iw-durable` ([`Server::with_durability`]), with checkpoint-plus-log
//!   crash recovery ([`DurabilityMode`], [`DurableOptions`] re-exported).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod locks;
mod metrics;
pub mod segment;
pub mod server;
pub mod wirestore;

pub use error::ServerError;
pub use iw_durable::{DurabilityMode, DurableOptions, Recovery};
pub use locks::LockTable;
pub use segment::{ServerBlock, ServerSegment, DIFF_CACHE_CAP, SUBBLOCK_PRIMS};
pub use server::{CommitHook, RequestGuard, Server};
pub use wirestore::{StoreLayout, WireStore};
