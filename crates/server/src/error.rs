//! Server error type.

use std::error::Error;
use std::fmt;

use iw_wire::codec::WireError;

/// Errors raised by server-side segment operations.
#[derive(Debug)]
pub enum ServerError {
    /// A wire-format payload was malformed.
    Wire(WireError),
    /// A diff's base version did not match the segment's current version.
    VersionMismatch {
        /// The version the diff claims to start from.
        diff_from: u64,
        /// The segment's actual current version.
        current: u64,
    },
    /// A diff referenced a block the server does not have.
    UnknownBlock(u32),
    /// A diff referenced an unregistered type descriptor.
    UnknownType(u32),
    /// A new block reused an existing serial number.
    DuplicateBlock(u32),
    /// A new block reused an existing symbolic name.
    DuplicateName(String),
    /// A diff run fell outside its block.
    RunOutOfRange {
        /// Block serial.
        serial: u32,
        /// Run start (primitive units).
        start: u64,
        /// Run length (primitive units).
        count: u64,
    },
    /// Checkpoint I/O failed.
    Io(std::io::Error),
    /// A checkpoint file was corrupt.
    BadCheckpoint(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Wire(e) => write!(f, "wire error: {e}"),
            ServerError::VersionMismatch { diff_from, current } => write!(
                f,
                "diff base version {diff_from} does not match current version {current}"
            ),
            ServerError::UnknownBlock(s) => write!(f, "unknown block serial {s}"),
            ServerError::UnknownType(s) => write!(f, "unknown type serial {s}"),
            ServerError::DuplicateBlock(s) => write!(f, "block serial {s} already exists"),
            ServerError::DuplicateName(n) => write!(f, "block name `{n}` already exists"),
            ServerError::RunOutOfRange {
                serial,
                start,
                count,
            } => write!(
                f,
                "diff run [{start}, {start}+{count}) out of range in block {serial}"
            ),
            ServerError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            ServerError::BadCheckpoint(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Wire(e) => Some(e),
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = ServerError::VersionMismatch {
            diff_from: 3,
            current: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        assert!(ServerError::UnknownBlock(9).to_string().contains('9'));
        let w: ServerError = WireError::InvalidUtf8.into();
        assert!(w.source().is_some());
    }
}
