//! Server-side segment state: blocks, versions, subblocks, and diffs.
//!
//! "The blocks of a given segment are organized into a balanced tree sorted
//! by their serial numbers (`svr_blk_number_tree`) and a linked list sorted
//! by their version numbers (`blk_version_list`). The linked list is
//! separated by markers into sublists … Markers are also organized into a
//! balanced tree sorted by version number (`marker_version_tree`)." (§3.2)
//!
//! This implementation realizes the version list and its marker tree with a
//! single ordered map keyed by `(version, arrival sequence)`: the key order
//! reproduces the list order exactly, range queries over versions play the
//! role of the marker tree, and "moving a block to the end of the list" is
//! a remove/insert with a fresh sequence number. The asymptotics match the
//! paper's balanced trees.
//!
//! "To track changes at a sufficiently fine grain, the server divides large
//! blocks into smaller contiguous subblocks [16 primitive data units]. It
//! then stores version numbers for these subblocks in a per-block array."

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use iw_types::desc::TypeDesc;
use iw_wire::codec::{WireReader, WireWriter};
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

use crate::error::ServerError;
use crate::wirestore::{StoreLayout, WireStore};

/// Primitive data units per subblock ("16 primitive data units in our
/// current implementation", §4.2).
pub const SUBBLOCK_PRIMS: u64 = 16;

/// Maximum number of recently seen diffs kept in the diff cache.
pub const DIFF_CACHE_CAP: usize = 16;

/// One diff-cache entry: the structural diff (its encode cache armed)
/// plus the recency stamp LRU eviction keys on.
#[derive(Debug)]
struct CachedDiff {
    diff: SegmentDiff,
    stamp: u64,
}

/// One block as stored by the server.
#[derive(Debug, Clone)]
pub struct ServerBlock {
    /// Serial number within the segment.
    pub serial: u32,
    /// Optional symbolic name.
    pub name: Option<String>,
    /// Serial of the block's element type descriptor.
    pub type_serial: u32,
    /// Number of elements.
    pub count: u32,
    /// Segment version in which the block was created.
    pub created_version: u64,
    /// Segment version in which the block was last modified.
    pub version: u64,
    /// Per-subblock last-modified versions.
    subblock_versions: Vec<u64>,
    /// Wire-format contents.
    store: WireStore,
    /// Key of this block in the version list.
    list_key: (u64, u64),
    /// Cached primitive count (avoids recomputing layouts).
    prims: u64,
}

impl ServerBlock {
    /// Number of primitive units in the block.
    pub fn prim_count(&self) -> u64 {
        self.prims
    }

    /// Number of subblocks.
    pub fn subblock_count(&self) -> usize {
        self.subblock_versions.len()
    }
}

/// Per-segment server state.
#[derive(Debug)]
pub struct ServerSegment {
    /// Segment name (`host/path`).
    pub name: String,
    /// Current version (0 = freshly created, never written).
    version: u64,
    /// `svr_blk_number_tree`: serial → block.
    blocks: BTreeMap<u32, ServerBlock>,
    /// Symbolic name → serial.
    names: HashMap<String, u32>,
    /// `blk_version_list` + `marker_version_tree`: (version, seq) → serial.
    version_list: BTreeMap<(u64, u64), u32>,
    seq: u64,
    /// Registered type descriptors with the version that introduced them.
    types: Vec<(TypeDesc, u64)>,
    type_index: HashMap<TypeDesc, u32>,
    /// Cache of storage layouts keyed by (type serial, count).
    layouts: HashMap<(u32, u32), StoreLayout>,
    /// Tombstones: (version freed, serial, version created).
    freed: Vec<(u64, u32, u64)>,
    /// Recently seen diffs, indexed by (from, to) version window.
    ///
    /// A `BTreeMap` replaces the original linear-scan `VecDeque`: exact
    /// windows resolve with one ordered lookup, and chain composition
    /// finds the longest cached step from any version with one bounded
    /// `range` probe instead of a full scan per link. Entries carry an
    /// LRU stamp; eviction at [`DIFF_CACHE_CAP`] drops the stalest
    /// window. Every cached diff has its encode cache armed, so the
    /// bytes sent to one reader are reused verbatim for every other
    /// reader of the same window (encode-once/serve-many).
    diff_cache: BTreeMap<(u64, u64), CachedDiff>,
    /// Monotonic recency clock for [`CachedDiff::stamp`].
    cache_clock: u64,
    /// Diff-cache hit counter (diagnostics / ablation).
    pub diff_cache_hits: u64,
    /// Updates built from scratch because no cached diff (or chain)
    /// covered the request.
    pub diff_cache_misses: u64,
    /// Diff-cache hits served by splicing a chain of cached diffs.
    pub chain_compositions: u64,
    /// Subblocks examined while building updates from scratch.
    pub subblocks_scanned: u64,
    /// Per-client conservative modified-prims counters for Diff coherence.
    diff_counters: HashMap<u64, u64>,
    /// Total primitive units across live blocks.
    total_prims: u64,
    /// Next block serial to hand to a write-locking client.
    next_serial: u32,
    /// Last-block prediction hint: the serial of the block that followed
    /// the most recently located block in the version list (§3.3 — "we
    /// predict the next changed block in the diff to be … the next block
    /// in the blk_version_list").
    pred_hint: Option<u32>,
    /// Prediction hit counter (diagnostics / ablation).
    pub pred_hits: u64,
}

impl ServerSegment {
    /// Creates an empty segment.
    pub fn new(name: impl Into<String>) -> Self {
        ServerSegment {
            name: name.into(),
            version: 0,
            blocks: BTreeMap::new(),
            names: HashMap::new(),
            version_list: BTreeMap::new(),
            seq: 0,
            types: Vec::new(),
            type_index: HashMap::new(),
            layouts: HashMap::new(),
            freed: Vec::new(),
            diff_cache: BTreeMap::new(),
            cache_clock: 0,
            diff_cache_hits: 0,
            diff_cache_misses: 0,
            chain_compositions: 0,
            subblocks_scanned: 0,
            diff_counters: HashMap::new(),
            total_prims: 0,
            next_serial: 0,
            pred_hint: None,
            pred_hits: 0,
        }
    }

    /// Current segment version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The serial the next allocated block must use.
    pub fn next_serial(&self) -> u32 {
        self.next_serial
    }

    /// The serial the next registered type must use.
    pub fn next_type_serial(&self) -> u32 {
        self.types.len() as u32
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total primitive units across live blocks.
    pub fn total_prims(&self) -> u64 {
        self.total_prims
    }

    /// Looks up a block by serial.
    pub fn block(&self, serial: u32) -> Option<&ServerBlock> {
        self.blocks.get(&serial)
    }

    /// Looks up a type descriptor by serial.
    pub fn type_desc(&self, serial: u32) -> Option<&TypeDesc> {
        self.types.get(serial as usize).map(|(t, _)| t)
    }

    fn layout(&mut self, type_serial: u32, count: u32) -> Result<StoreLayout, ServerError> {
        if let Some(l) = self.layouts.get(&(type_serial, count)) {
            return Ok(l.clone());
        }
        let ty = self
            .types
            .get(type_serial as usize)
            .map(|(t, _)| t.clone())
            .ok_or(ServerError::UnknownType(type_serial))?;
        let l = StoreLayout::new(&ty, count);
        self.layouts.insert((type_serial, count), l.clone());
        Ok(l)
    }

    // ------------------------------------------------------------------
    // Applying client diffs (§3.2 "Modification tracking and diff
    // creation": receive side)
    // ------------------------------------------------------------------

    /// Applies a write-release diff from a client, advancing the segment
    /// one version. Returns the new version.
    ///
    /// # Errors
    ///
    /// [`ServerError::VersionMismatch`] unless `diff.from_version` equals
    /// the current version (the writer lock is exclusive, so a correct
    /// client can never be behind); plus structural errors for unknown
    /// blocks/types, duplicate serials/names, and out-of-range runs.
    pub fn apply_diff(&mut self, diff: &SegmentDiff) -> Result<u64, ServerError> {
        if diff.from_version != self.version {
            return Err(ServerError::VersionMismatch {
                diff_from: diff.from_version,
                current: self.version,
            });
        }
        let new_version = self.version + 1;

        // Install newly registered type descriptors.
        for (serial, ty) in &diff.new_types {
            if *serial as usize != self.types.len() {
                // Idempotent re-registration of a known serial is fine if
                // identical; anything else is a protocol violation.
                match self.types.get(*serial as usize) {
                    Some((existing, _)) if existing == ty => continue,
                    _ => return Err(ServerError::UnknownType(*serial)),
                }
            }
            self.types.push((ty.clone(), new_version));
            self.type_index.insert(ty.clone(), *serial);
        }

        // "Newly created blocks are then appended to the end of the list."
        for nb in &diff.new_blocks {
            if self.blocks.contains_key(&nb.serial) {
                return Err(ServerError::DuplicateBlock(nb.serial));
            }
            if let Some(n) = &nb.name {
                if self.names.contains_key(n) {
                    return Err(ServerError::DuplicateName(n.clone()));
                }
            }
            let layout = self.layout(nb.type_serial, nb.count)?;
            let prims = layout.prim_count();
            let mut store = WireStore::new(&layout);
            let mut r = WireReader::new(Bytes::from(nb.data.to_vec()));
            store.apply(&layout, 0, prims, &mut r)?;
            let subblocks = prims.div_ceil(SUBBLOCK_PRIMS).max(1) as usize;
            let key = (new_version, self.next_seq());
            self.version_list.insert(key, nb.serial);
            self.blocks.insert(
                nb.serial,
                ServerBlock {
                    serial: nb.serial,
                    name: nb.name.clone(),
                    type_serial: nb.type_serial,
                    count: nb.count,
                    created_version: new_version,
                    version: new_version,
                    subblock_versions: vec![new_version; subblocks],
                    store,
                    list_key: key,
                    prims,
                },
            );
            if let Some(n) = &nb.name {
                self.names.insert(n.clone(), nb.serial);
            }
            self.total_prims += prims;
            self.next_serial = self.next_serial.max(nb.serial + 1);
        }

        // "Modified blocks are first located by searching the
        // svr_blk_number_tree, and then are moved to the end of the list."
        // Last-block prediction (§3.3): try the successor of the block we
        // found last time before searching the tree.
        for bd in &diff.block_diffs {
            if self.pred_hint == Some(bd.serial) {
                self.pred_hits += 1;
            }
            let block = self
                .blocks
                .get_mut(&bd.serial)
                .ok_or(ServerError::UnknownBlock(bd.serial))?;
            let layout_key = (block.type_serial, block.count);
            let layout = match self.layouts.get(&layout_key) {
                Some(l) => l.clone(),
                None => {
                    let ty = self
                        .types
                        .get(block.type_serial as usize)
                        .map(|(t, _)| t.clone())
                        .ok_or(ServerError::UnknownType(block.type_serial))?;
                    let l = StoreLayout::new(&ty, block.count);
                    self.layouts.insert(layout_key, l.clone());
                    l
                }
            };
            let block = self.blocks.get_mut(&bd.serial).expect("checked above");
            for run in &bd.runs {
                if run.start + run.count > block.prims {
                    return Err(ServerError::RunOutOfRange {
                        serial: bd.serial,
                        start: run.start,
                        count: run.count,
                    });
                }
                let mut r = WireReader::new(Bytes::from(run.data.to_vec()));
                block.store.apply(&layout, run.start, run.count, &mut r)?;
                let first = run.start / SUBBLOCK_PRIMS;
                let last = (run.start + run.count - 1) / SUBBLOCK_PRIMS;
                for sb in first..=last {
                    block.subblock_versions[sb as usize] = new_version;
                }
            }
            block.version = new_version;
            let old_key = block.list_key;
            let new_key = (new_version, self.seq);
            self.seq += 1;
            block.list_key = new_key;
            // Remember the serial that followed this block in the list:
            // modification order tends to repeat, so that is our guess
            // for the next block in this diff.
            self.pred_hint = self
                .version_list
                .range((
                    std::ops::Bound::Excluded(old_key),
                    std::ops::Bound::Unbounded,
                ))
                .next()
                .map(|(_, &s)| s);
            self.version_list.remove(&old_key);
            self.version_list.insert(new_key, bd.serial);
        }

        // Freed blocks become tombstones (with their creation version, so
        // updates can skip tombstones for blocks a client never saw).
        for &serial in &diff.freed {
            let block = self
                .blocks
                .remove(&serial)
                .ok_or(ServerError::UnknownBlock(serial))?;
            if let Some(n) = &block.name {
                self.names.remove(n);
            }
            self.version_list.remove(&block.list_key);
            self.total_prims -= block.prims;
            self.freed
                .push((new_version, serial, block.created_version));
        }

        // "For each client using Diff coherence, the server must track the
        // percentage of the segment that has been modified since the last
        // update sent to the client. … It adds the sizes of these updates
        // into a single counter."
        let changed: u64 = diff
            .block_diffs
            .iter()
            .map(BlockDiff::prims_changed)
            .sum::<u64>()
            + diff.new_blocks.len() as u64; // creations count too (coarse)
        for counter in self.diff_counters.values_mut() {
            *counter += changed;
        }

        self.version = new_version;
        self.cache_diff(diff.clone());
        Ok(new_version)
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Building update diffs for clients
    // ------------------------------------------------------------------

    /// `true` when a client holding `have_version` under `coherence` needs
    /// an update (the "recent enough" check of §2.2/§3.2).
    pub fn needs_update(
        &self,
        client: u64,
        have_version: u64,
        coherence: iw_proto::Coherence,
    ) -> bool {
        use iw_proto::Coherence::*;
        if have_version >= self.version {
            return false;
        }
        match coherence {
            Full | Temporal(_) => true,
            Delta(x) => self.version - have_version > u64::from(x),
            Diff(bp) => {
                let Some(&counter) = self.diff_counters.get(&client) else {
                    return true; // no counter yet: be conservative
                };
                if self.total_prims == 0 {
                    return true;
                }
                counter * 10_000 > u64::from(bp) * self.total_prims
            }
        }
    }

    /// Forgets all per-client state for `client` (disconnect). Without
    /// this the Diff-coherence counters grow without bound and a reused
    /// client id would inherit the stale accumulated-change count.
    pub fn drop_client(&mut self, client: u64) {
        self.diff_counters.remove(&client);
    }

    /// The Diff-coherence counter currently tracked for `client`
    /// (diagnostics and tests).
    pub fn diff_counter(&self, client: u64) -> Option<u64> {
        self.diff_counters.get(&client).copied()
    }

    /// Number of clients with a live Diff-coherence counter.
    pub fn diff_counter_count(&self) -> usize {
        self.diff_counters.len()
    }

    /// Builds the diff that brings a copy at `have_version` up to the
    /// current version, and resets the requesting client's Diff-coherence
    /// counter. Checks the diff cache first (§3.3 "Diff caching").
    ///
    /// # Errors
    ///
    /// Structural errors only (corrupt internal state); callers treat any
    /// error as fatal for the segment.
    pub fn collect_update(
        &mut self,
        client: u64,
        have_version: u64,
    ) -> Result<SegmentDiff, ServerError> {
        self.diff_counters.insert(client, 0);
        self.cache_clock += 1;
        let stamp = self.cache_clock;
        if let Some(entry) = self.diff_cache.get_mut(&(have_version, self.version)) {
            entry.stamp = stamp;
            self.diff_cache_hits += 1;
            // Clones share the armed encode cache: if this window's
            // bytes were ever materialized, they are served as-is.
            return Ok(entry.diff.clone());
        }
        // Chain composition: a multi-version update can often be served
        // by splicing cached per-version diffs end to end (with run
        // dedup), keeping the fine granularity of the client-collected
        // diffs instead of falling back to subblock granularity. Initial
        // fetches (version 0) always get a clean snapshot — replaying the
        // whole history would resend long-dead data.
        if have_version > 0 {
            let composed = self
                .cached_chain(have_version)
                .map(|chain| compose_chain(&chain, have_version, self.version));
            if let Some(composed) = composed {
                self.diff_cache_hits += 1;
                self.chain_compositions += 1;
                return Ok(self.cache_diff(composed));
            }
        }
        self.diff_cache_misses += 1;
        let diff = self.build_update(have_version)?;
        Ok(self.cache_diff(diff))
    }

    /// Finds a complete chain of cached diffs covering
    /// `have_version → current`, if one exists. Borrows straight from
    /// the cache — composition reads through the references and only
    /// the composed result is materialized (no per-link diff clones).
    fn cached_chain(&self, have_version: u64) -> Option<Vec<&SegmentDiff>> {
        let mut out = Vec::new();
        let mut at = have_version;
        while at < self.version {
            // The longest cached step out of `at`: the greatest
            // (at, to <= current) key. One O(log n) probe per link.
            let ((_, to), entry) = self
                .diff_cache
                .range((at, 0)..=(at, self.version))
                .next_back()
                .filter(|((_, to), _)| *to > at)?;
            out.push(&entry.diff);
            at = *to;
        }
        (!out.is_empty()).then_some(out)
    }

    fn build_update(&mut self, have_version: u64) -> Result<SegmentDiff, ServerError> {
        let mut out = SegmentDiff {
            from_version: have_version,
            to_version: self.version,
            ..Default::default()
        };
        // Types introduced after the client's version.
        for (serial, (ty, intro)) in self.types.iter().enumerate() {
            if *intro > have_version {
                out.new_types.push((serial as u32, ty.clone()));
            }
        }
        // Walk the version list from the first marker past have_version:
        // "the server traverses the marker_version_tree to locate the
        // first marker whose version is newer than the client's version."
        let keys: Vec<(u32, bool)> = self
            .version_list
            .range((have_version + 1, 0)..)
            .map(|(_, &serial)| {
                let b = &self.blocks[&serial];
                (serial, b.created_version > have_version)
            })
            .collect();
        for (serial, is_new) in keys {
            let block = &self.blocks[&serial];
            let (type_serial, count, name) = (block.type_serial, block.count, block.name.clone());
            let layout = self.layout(type_serial, count)?;
            let block = &self.blocks[&serial];
            if is_new {
                let data = block.store.extract_all(&layout)?;
                out.new_blocks.push(NewBlock {
                    serial,
                    name,
                    type_serial,
                    count,
                    data,
                });
            } else {
                // "Those modified subblocks are identified by version
                // numbers associated with each subblock." Coalesce
                // adjacent stale subblocks into runs.
                let mut runs = Vec::new();
                let mut i = 0u64;
                let n_sub = block.subblock_versions.len() as u64;
                self.subblocks_scanned += n_sub;
                while i < n_sub {
                    if block.subblock_versions[i as usize] > have_version {
                        let start_sb = i;
                        while i < n_sub && block.subblock_versions[i as usize] > have_version {
                            i += 1;
                        }
                        let start = start_sb * SUBBLOCK_PRIMS;
                        let end = (i * SUBBLOCK_PRIMS).min(block.prims);
                        let mut w = WireWriter::new();
                        block.store.extract(&layout, start, end - start, &mut w)?;
                        runs.push(DiffRun {
                            start,
                            count: end - start,
                            data: w.finish(),
                        });
                    } else {
                        i += 1;
                    }
                }
                out.block_diffs.push(BlockDiff { serial, runs });
            }
        }
        // Tombstones the client has not seen — but only for blocks whose
        // creation it *did* see; otherwise the serial means nothing to it.
        for &(v, serial, created) in &self.freed {
            if v > have_version && created <= have_version {
                out.freed.push(serial);
            }
        }
        Ok(out)
    }

    /// Inserts `diff` into the cache (arming its encode cache first) and
    /// returns a clone sharing that armed cache — callers hand the clone
    /// out, so the first encoding of the window is the last.
    fn cache_diff(&mut self, mut diff: SegmentDiff) -> SegmentDiff {
        diff.arm_enc_cache();
        let key = (diff.from_version, diff.to_version);
        self.cache_clock += 1;
        let stamp = self.cache_clock;
        if let Some(entry) = self.diff_cache.get_mut(&key) {
            entry.stamp = stamp;
            return entry.diff.clone();
        }
        if self.diff_cache.len() >= DIFF_CACHE_CAP {
            // O(cap) LRU eviction — cap is small and insertions are rare
            // next to lookups, so a second recency index would cost more
            // than this scan.
            if let Some(stalest) = self
                .diff_cache
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.diff_cache.remove(&stalest);
            }
        }
        let out = diff.clone();
        self.diff_cache.insert(key, CachedDiff { diff, stamp });
        out
    }

    /// Drops all cached diffs (used by checkpoint restore and ablations).
    pub fn clear_diff_cache(&mut self) {
        self.diff_cache.clear();
    }

    // ------------------------------------------------------------------
    // Checkpoint support (internal accessors)
    // ------------------------------------------------------------------

    pub(crate) fn blocks_iter(&self) -> impl Iterator<Item = &ServerBlock> {
        self.blocks.values()
    }

    pub(crate) fn types_iter(&self) -> impl Iterator<Item = (&TypeDesc, u64)> {
        self.types.iter().map(|(t, v)| (t, *v))
    }

    pub(crate) fn freed_iter(&self) -> impl Iterator<Item = (u64, u32, u64)> + '_ {
        self.freed.iter().copied()
    }

    pub(crate) fn restore_state(
        &mut self,
        version: u64,
        next_serial: u32,
        freed: Vec<(u64, u32, u64)>,
    ) {
        self.version = version;
        self.next_serial = next_serial;
        self.freed = freed;
    }

    pub(crate) fn restore_type(&mut self, ty: TypeDesc, intro: u64) {
        self.type_index.insert(ty.clone(), self.types.len() as u32);
        self.types.push((ty, intro));
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_block(
        &mut self,
        serial: u32,
        name: Option<String>,
        type_serial: u32,
        count: u32,
        created_version: u64,
        version: u64,
        subblock_versions: Vec<u64>,
        data: &[u8],
    ) -> Result<(), ServerError> {
        let layout = self.layout(type_serial, count)?;
        let prims = layout.prim_count();
        let mut store = WireStore::new(&layout);
        let mut r = WireReader::new(Bytes::from(data.to_vec()));
        store.apply(&layout, 0, prims, &mut r)?;
        let key = (version, self.next_seq());
        self.version_list.insert(key, serial);
        if let Some(n) = &name {
            self.names.insert(n.clone(), serial);
        }
        self.total_prims += prims;
        self.next_serial = self.next_serial.max(serial + 1);
        self.blocks.insert(
            serial,
            ServerBlock {
                serial,
                name,
                type_serial,
                count,
                created_version,
                version,
                subblock_versions,
                store,
                list_key: key,
                prims,
            },
        );
        Ok(())
    }

    pub(crate) fn block_data(&mut self, serial: u32) -> Result<Bytes, ServerError> {
        let block = self
            .blocks
            .get(&serial)
            .ok_or(ServerError::UnknownBlock(serial))?;
        let layout = self.layout(block.type_serial, block.count)?;
        let block = &self.blocks[&serial];
        Ok(block.store.extract_all(&layout)?)
    }

    pub(crate) fn block_subblock_versions(&self, serial: u32) -> &[u64] {
        &self.blocks[&serial].subblock_versions
    }
}

/// Splices a chain of version-adjacent diffs into one. Runs that update
/// the exact same primitive range in multiple steps are deduplicated to
/// the most recent data; everything else is concatenated in version
/// order, which diff application handles correctly (later data wins).
fn compose_chain(chain: &[&SegmentDiff], from: u64, to: u64) -> SegmentDiff {
    use std::collections::HashMap;
    let mut out = SegmentDiff {
        from_version: from,
        to_version: to,
        ..Default::default()
    };
    let mut seen_types: std::collections::HashSet<u32> = Default::default();
    let mut block_runs: HashMap<u32, Vec<DiffRun>> = HashMap::new();
    let mut block_order: Vec<u32> = Vec::new();
    for d in chain {
        for (serial, ty) in &d.new_types {
            if seen_types.insert(*serial) {
                out.new_types.push((*serial, ty.clone()));
            }
        }
        out.new_blocks.extend(d.new_blocks.iter().cloned());
        for bd in &d.block_diffs {
            let runs = block_runs.entry(bd.serial).or_insert_with(|| {
                block_order.push(bd.serial);
                Vec::new()
            });
            for run in &bd.runs {
                // Dedup an exact-duplicate range only when no later
                // overlapping run would be reordered past it: scan from
                // the tail and stop at the first overlap.
                let mut replaced = false;
                for i in (0..runs.len()).rev() {
                    let r = &runs[i];
                    let overlaps = r.start < run.start + run.count && run.start < r.start + r.count;
                    if !overlaps {
                        continue;
                    }
                    if r.start == run.start && r.count == run.count {
                        // Safe: nothing after index i overlaps this range,
                        // so moving the data to the tail preserves apply
                        // order for every primitive.
                        runs.remove(i);
                        runs.push(run.clone());
                        replaced = true;
                    }
                    break;
                }
                if !replaced {
                    runs.push(run.clone());
                }
            }
        }
        out.freed.extend(d.freed.iter().copied());
    }
    for serial in block_order {
        let runs = block_runs.remove(&serial).expect("ordered serial");
        out.block_diffs.push(BlockDiff { serial, runs });
    }
    out.freed.sort_unstable();
    out.freed.dedup();
    out
}

#[cfg(test)]
mod compose_tests {
    use super::*;

    fn run(start: u64, count: u64, byte: u8) -> DiffRun {
        DiffRun {
            start,
            count,
            data: Bytes::from(vec![byte; (count * 4) as usize]),
        }
    }

    fn step(from: u64, runs: Vec<DiffRun>) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            block_diffs: vec![BlockDiff { serial: 0, runs }],
            ..Default::default()
        }
    }

    /// Applies runs in order to a model array, for semantics checks.
    fn replay(diffs: &[&SegmentDiff], prims: usize) -> Vec<u8> {
        let mut cells = vec![0u8; prims];
        for d in diffs {
            for bd in &d.block_diffs {
                for r in &bd.runs {
                    for k in 0..r.count {
                        cells[(r.start + k) as usize] = r.data[0];
                    }
                }
            }
        }
        cells
    }

    #[test]
    fn exact_duplicates_dedup_to_latest() {
        let a = step(1, vec![run(5, 1, 0xA1)]);
        let b = step(2, vec![run(5, 1, 0xB2)]);
        let c = compose_chain(&[&a, &b], 1, 3);
        assert_eq!(c.block_diffs[0].runs.len(), 1);
        assert_eq!(c.block_diffs[0].runs[0].data[0], 0xB2);
        assert_eq!(replay(&[&c], 8), replay(&[&a, &b], 8));
    }

    #[test]
    fn interleaved_overlap_is_not_reordered() {
        // v1: prims 5..9 = A; v2: prims 6..8 = C; v3: prims 5..9 = B.
        // Deduping v1/v3 must not let v2 clobber v3's data.
        let a = step(1, vec![run(5, 4, 0xA1)]);
        let b = step(2, vec![run(6, 2, 0xC3)]);
        let c3 = step(3, vec![run(5, 4, 0xB2)]);
        let composed = compose_chain(&[&a, &b, &c3], 1, 4);
        assert_eq!(replay(&[&composed], 12), replay(&[&a, &b, &c3], 12));
    }

    #[test]
    fn disjoint_runs_concatenate() {
        let a = step(1, vec![run(0, 2, 1)]);
        let b = step(2, vec![run(10, 2, 2)]);
        let c = compose_chain(&[&a, &b], 1, 3);
        assert_eq!(c.block_diffs[0].runs.len(), 2);
        assert_eq!(c.from_version, 1);
        assert_eq!(c.to_version, 3);
    }

    #[test]
    fn chain_served_from_cache_matches_sequential_application() {
        // End-to-end: a segment with versions 1..5; a client at 1 asks
        // for an update after the per-version diffs are cached.
        let mut seg = ServerSegment::new("c/s");
        let init = SegmentDiff {
            from_version: 0,
            to_version: 1,
            new_types: vec![(0, iw_types::desc::TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 0,
                name: None,
                type_serial: 0,
                count: 64,
                data: Bytes::from(vec![0u8; 256]),
            }],
            ..Default::default()
        };
        seg.apply_diff(&init).unwrap();
        for v in 1..5u64 {
            let d = step_with_serial(v, vec![run((v * 7) % 60, 2, v as u8)]);
            seg.apply_diff(&d).unwrap();
        }
        let hits_before = seg.diff_cache_hits;
        let upd = seg.collect_update(42, 1).unwrap();
        assert!(seg.diff_cache_hits > hits_before, "chain should hit cache");
        assert_eq!(upd.from_version, 1);
        assert_eq!(upd.to_version, 5);
        // Compare against a freshly built (subblock) update semantically.
        seg.clear_diff_cache();
        let built = seg.collect_update(43, 1).unwrap();
        let via_chain = replay_diff(&upd, 64);
        let via_built = replay_diff(&built, 64);
        // The rebuilt update works at subblock granularity, so it may
        // cover extra (unchanged) primitives; the chain's touched set
        // must be a subset with identical values.
        for i in via_chain.1.iter() {
            assert!(via_built.1.contains(i), "prim {i} missing from rebuild");
            assert_eq!(via_chain.0[*i], via_built.0[*i], "prim {i}");
        }
    }

    fn step_with_serial(from: u64, runs: Vec<DiffRun>) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            block_diffs: vec![BlockDiff { serial: 0, runs }],
            ..Default::default()
        }
    }

    /// Replays a diff's runs over a 4-byte-prim model; returns the cell
    /// bytes and the set of touched indices.
    fn replay_diff(d: &SegmentDiff, prims: usize) -> (Vec<u8>, Vec<usize>) {
        let mut cells = vec![0u8; prims];
        let mut touched = std::collections::BTreeSet::new();
        for bd in &d.block_diffs {
            for r in &bd.runs {
                for k in 0..r.count {
                    let idx = (r.start + k) as usize;
                    cells[idx] = r.data[(k * 4) as usize];
                    touched.insert(idx);
                }
            }
        }
        (cells, touched.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_proto::Coherence;

    fn int_block_diff(serial: u32, vals: &[(u64, i32)]) -> BlockDiff {
        BlockDiff {
            serial,
            runs: vals
                .iter()
                .map(|&(start, v)| DiffRun {
                    start,
                    count: 1,
                    data: Bytes::from((v as u32).to_be_bytes().to_vec()),
                })
                .collect(),
        }
    }

    fn seg_with_int_block(nprims: u32) -> ServerSegment {
        let mut s = ServerSegment::new("h/s");
        let data: Vec<u8> = (0..nprims).flat_map(|_| [0, 0, 0, 0]).collect();
        let diff = SegmentDiff {
            from_version: 0,
            to_version: 1,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 0,
                name: Some("arr".into()),
                type_serial: 0,
                count: nprims,
                data: Bytes::from(data),
            }],
            ..Default::default()
        };
        assert_eq!(s.apply_diff(&diff).unwrap(), 1);
        s
    }

    #[test]
    fn create_block_and_versions() {
        let s = seg_with_int_block(64);
        assert_eq!(s.version(), 1);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.total_prims(), 64);
        assert_eq!(s.next_serial(), 1);
        assert_eq!(s.next_type_serial(), 1);
        let b = s.block(0).unwrap();
        assert_eq!(b.version, 1);
        assert_eq!(b.created_version, 1);
        assert_eq!(s.block_subblock_versions(0), &[1, 1, 1, 1]);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut s = seg_with_int_block(16);
        let diff = SegmentDiff {
            from_version: 5,
            to_version: 6,
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&diff),
            Err(ServerError::VersionMismatch {
                diff_from: 5,
                current: 1
            })
        ));
    }

    #[test]
    fn modify_updates_subblock_versions() {
        let mut s = seg_with_int_block(64);
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(0, &[(17, 42)])],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        // prim 17 lives in subblock 1; only it advances.
        assert_eq!(s.block_subblock_versions(0), &[1, 2, 1, 1]);
        assert_eq!(s.block(0).unwrap().version, 2);
    }

    #[test]
    fn update_for_stale_client_carries_only_stale_subblocks() {
        let mut s = seg_with_int_block(64);
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(0, &[(17, 42)])],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        // Bypass the diff cache (which would faithfully forward the
        // client's fine-grained diff) to observe subblock granularity.
        s.clear_diff_cache();
        let upd = s.collect_update(1, 1).unwrap();
        assert_eq!(upd.from_version, 1);
        assert_eq!(upd.to_version, 2);
        assert!(upd.new_blocks.is_empty());
        assert_eq!(upd.block_diffs.len(), 1);
        let runs = &upd.block_diffs[0].runs;
        assert_eq!(runs.len(), 1);
        // The whole 16-prim subblock travels ("the server loses track of
        // fine-grain modifications", §4.2).
        assert_eq!(runs[0].start, 16);
        assert_eq!(runs[0].count, 16);
        // prim 17 carries 42.
        let mut r = WireReader::new(runs[0].data.clone());
        let _p16 = r.get_u32().unwrap();
        assert_eq!(r.get_u32().unwrap(), 42);
    }

    #[test]
    fn update_from_zero_is_full_transfer() {
        let mut s = seg_with_int_block(64);
        let upd = s.collect_update(1, 0).unwrap();
        assert_eq!(upd.new_blocks.len(), 1);
        assert_eq!(upd.new_blocks[0].count, 64);
        assert_eq!(upd.new_types.len(), 1);
        assert!(upd.block_diffs.is_empty());
    }

    #[test]
    fn adjacent_stale_subblocks_coalesce() {
        let mut s = seg_with_int_block(64);
        // Touch subblocks 1 and 2 in one version.
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(0, &[(17, 1), (33, 2)])],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        s.clear_diff_cache();
        let upd = s.collect_update(1, 1).unwrap();
        let runs = &upd.block_diffs[0].runs;
        assert_eq!(runs.len(), 1, "adjacent subblocks must merge");
        assert_eq!(runs[0].start, 16);
        assert_eq!(runs[0].count, 32);
    }

    #[test]
    fn free_produces_tombstone() {
        let mut s = seg_with_int_block(16);
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            freed: vec![0],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        assert_eq!(s.block_count(), 0);
        assert_eq!(s.total_prims(), 0);
        let upd = s.collect_update(1, 1).unwrap();
        assert_eq!(upd.freed, vec![0]);
        // A client at version 2 sees nothing.
        let upd2 = s.collect_update(1, 2).unwrap();
        assert!(upd2.freed.is_empty() && upd2.block_diffs.is_empty());
    }

    #[test]
    fn diff_cache_serves_repeat_requests() {
        let mut s = seg_with_int_block(64);
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(0, &[(0, 7)])],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        // The client-sent diff itself is cached and can be forwarded:
        // "In most cases, a client sends the server a diff, and the server
        // caches and forwards it in response to subsequent requests."
        let before = s.diff_cache_hits;
        let upd = s.collect_update(2, 1).unwrap();
        assert_eq!(s.diff_cache_hits, before + 1);
        assert_eq!(upd, diff);
    }

    #[test]
    fn coherence_models_gate_updates() {
        let mut s = seg_with_int_block(160); // 160 prims
        for v in 1..=4u64 {
            let diff = SegmentDiff {
                from_version: v,
                to_version: v + 1,
                block_diffs: vec![int_block_diff(0, &[(0, v as i32)])],
                ..Default::default()
            };
            s.apply_diff(&diff).unwrap();
        }
        // Now at version 5. A client at version 3:
        assert!(s.needs_update(9, 3, Coherence::Full));
        assert!(s.needs_update(9, 3, Coherence::Temporal(1000)));
        assert!(!s.needs_update(9, 3, Coherence::Delta(2)));
        assert!(s.needs_update(9, 3, Coherence::Delta(1)));
        assert!(!s.needs_update(9, 5, Coherence::Full));

        // Diff coherence: fresh client is conservative.
        assert!(s.needs_update(9, 3, Coherence::Diff(1000)));
        // After an update its counter resets.
        s.collect_update(9, 3).unwrap();
        assert!(!s.needs_update(9, 5, Coherence::Diff(1000)));
        // One more modification of 16-prim granularity: 1 prim counted,
        // 1/160 = 0.625% = 62.5bp.
        let diff = SegmentDiff {
            from_version: 5,
            to_version: 6,
            block_diffs: vec![int_block_diff(0, &[(0, 99)])],
            ..Default::default()
        };
        s.apply_diff(&diff).unwrap();
        assert!(s.needs_update(9, 5, Coherence::Diff(10))); // 0.1% < 0.625%
        assert!(!s.needs_update(9, 5, Coherence::Diff(100))); // 1% > 0.625%
    }

    #[test]
    fn unknown_block_and_type_rejected() {
        let mut s = seg_with_int_block(16);
        let bad = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(77, &[(0, 1)])],
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&bad),
            Err(ServerError::UnknownBlock(77))
        ));
        let bad = SegmentDiff {
            from_version: 1,
            to_version: 2,
            new_blocks: vec![NewBlock {
                serial: 5,
                name: None,
                type_serial: 9,
                count: 1,
                data: Bytes::new(),
            }],
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&bad),
            Err(ServerError::UnknownType(9))
        ));
    }

    #[test]
    fn out_of_range_run_rejected() {
        let mut s = seg_with_int_block(16);
        let bad = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![int_block_diff(0, &[(16, 1)])],
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&bad),
            Err(ServerError::RunOutOfRange {
                serial: 0,
                start: 16,
                count: 1
            })
        ));
    }

    #[test]
    fn duplicate_serial_and_name_rejected() {
        let mut s = seg_with_int_block(16);
        let dup = SegmentDiff {
            from_version: 1,
            to_version: 2,
            new_blocks: vec![NewBlock {
                serial: 0,
                name: None,
                type_serial: 0,
                count: 1,
                data: Bytes::from_static(&[0, 0, 0, 0]),
            }],
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&dup),
            Err(ServerError::DuplicateBlock(0))
        ));
        let dup = SegmentDiff {
            from_version: 1,
            to_version: 2,
            new_blocks: vec![NewBlock {
                serial: 9,
                name: Some("arr".into()),
                type_serial: 0,
                count: 1,
                data: Bytes::from_static(&[0, 0, 0, 0]),
            }],
            ..Default::default()
        };
        assert!(matches!(
            s.apply_diff(&dup),
            Err(ServerError::DuplicateName(_))
        ));
    }

    #[test]
    fn prediction_hits_on_sequential_modification() {
        // Two blocks modified repeatedly in the same order: the version
        // list order becomes the modification order, so the successor
        // prediction should hit.
        let mut s = ServerSegment::new("h/s");
        let init = SegmentDiff {
            from_version: 0,
            to_version: 1,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: (0..3)
                .map(|i| NewBlock {
                    serial: i,
                    name: None,
                    type_serial: 0,
                    count: 4,
                    data: Bytes::from(vec![0; 16]),
                })
                .collect(),
            ..Default::default()
        };
        s.apply_diff(&init).unwrap();
        for v in 1..5u64 {
            let diff = SegmentDiff {
                from_version: v,
                to_version: v + 1,
                block_diffs: (0..3).map(|i| int_block_diff(i, &[(0, 1)])).collect(),
                ..Default::default()
            };
            s.apply_diff(&diff).unwrap();
        }
        assert!(
            s.pred_hits > 0,
            "sequential updates should hit the predictor"
        );
    }
}
