//! Server-side metrics: a per-server [`Registry`] with pre-resolved
//! handles, scraped remotely via `Request::Stats` (the `iwstat` CLI).
//!
//! Hot per-segment counters (diff-cache hits, subblock scans…) stay plain
//! `u64` fields on [`crate::segment::ServerSegment`] — the segment is
//! always behind the server lock, so atomics would buy nothing — and are
//! aggregated into the snapshot at scrape time.

use std::fmt;
use std::sync::Arc;

use iw_proto::Request;
use iw_telemetry::{Counter, Gauge, Histogram, Registry};

/// Pre-resolved metric handles for one [`crate::Server`].
pub(crate) struct ServerMetrics {
    registry: Arc<Registry>,
    /// `server.requests_total` — requests handled, all kinds.
    pub requests: Arc<Counter>,
    /// `server.req.<kind>_total`, indexed like [`Request::KINDS`].
    pub req_kind: Vec<Arc<Counter>>,
    /// `server.errors_total` — requests answered with `Reply::Error`.
    pub errors: Arc<Counter>,
    /// `server.lock.granted_total` — lock acquisitions granted.
    pub lock_granted: Arc<Counter>,
    /// `server.lock.busy_total` — acquisitions refused as busy.
    pub lock_busy: Arc<Counter>,
    /// `server.lock.released_total` — locks actually released.
    pub lock_released: Arc<Counter>,
    /// `server.checkpoints_total` — checkpoint files written.
    pub checkpoints: Arc<Counter>,
    /// `server.checkpoint_us` — wall time of one checkpoint write.
    pub checkpoint_us: Arc<Histogram>,
    /// `server.locks_held` — locks currently held (refreshed at scrape).
    pub locks_held: Arc<Gauge>,
    /// `server.clients` — registered clients (refreshed at scrape).
    pub clients: Arc<Gauge>,
    /// `server.concurrent_requests` — requests currently inside
    /// `handle_request` (live; the high-water mark is the synthetic
    /// `server.concurrent_requests_peak` snapshot counter).
    pub concurrent_requests: Arc<Gauge>,
    /// `server.segment_lock_wait` — threads currently blocked waiting
    /// for a per-segment lock.
    pub segment_lock_wait: Arc<Gauge>,
    /// `server.segment_lock_wait_us` — time spent acquiring per-segment
    /// locks.
    pub segment_lock_wait_us: Arc<Histogram>,
    /// `server.busy_us_total` — cumulative wall time spent inside
    /// `handle_request`, across all worker threads. Exceeding elapsed
    /// wall time proves requests overlapped.
    pub busy_us: Arc<Counter>,
    /// `cluster.diffs_applied_total` — replication diffs applied (backup
    /// role).
    pub repl_diffs_applied: Arc<Counter>,
    /// `cluster.sync_full_applied_total` — full catch-up images applied
    /// (backup role).
    pub repl_syncs_applied: Arc<Counter>,
    /// `cluster.catchup_bytes_total` — bytes of full catch-up images
    /// applied (backup role).
    pub repl_catchup_bytes: Arc<Counter>,
    /// `cluster.failovers_total` — clients that re-registered here after
    /// failing over from another replica.
    pub failovers: Arc<Counter>,
    /// `wire.diff_bytes_raw_total` — v1-equivalent bytes of every diff
    /// shipped in a reply (what the wire would have carried before the
    /// v2/compression overhaul; the baseline of the compaction ratio).
    pub diff_bytes_raw: Arc<Counter>,
    /// `wire.diff_bytes_sent_total` — bytes diffs actually occupied in
    /// replies under the negotiated revision.
    pub diff_bytes_sent: Arc<Counter>,
    /// `server.enc_cache.hits_total` — reply diffs served straight from
    /// an already-materialized encoding (encode-once/serve-many).
    pub enc_cache_hits: Arc<Counter>,
    /// `server.enc_cache.misses_total` — reply diffs that had to be
    /// encoded on this request.
    pub enc_cache_misses: Arc<Counter>,
}

impl ServerMetrics {
    /// Resolves every handle against `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        let req_kind = Request::KINDS
            .iter()
            .map(|k| registry.counter(&format!("server.req.{k}_total")))
            .collect();
        ServerMetrics {
            requests: registry.counter("server.requests_total"),
            req_kind,
            errors: registry.counter("server.errors_total"),
            lock_granted: registry.counter("server.lock.granted_total"),
            lock_busy: registry.counter("server.lock.busy_total"),
            lock_released: registry.counter("server.lock.released_total"),
            checkpoints: registry.counter("server.checkpoints_total"),
            checkpoint_us: registry.histogram_us("server.checkpoint_us"),
            locks_held: registry.gauge("server.locks_held"),
            clients: registry.gauge("server.clients"),
            concurrent_requests: registry.gauge("server.concurrent_requests"),
            segment_lock_wait: registry.gauge("server.segment_lock_wait"),
            segment_lock_wait_us: registry.histogram_us("server.segment_lock_wait_us"),
            busy_us: registry.counter("server.busy_us_total"),
            repl_diffs_applied: registry.counter("cluster.diffs_applied_total"),
            repl_syncs_applied: registry.counter("cluster.sync_full_applied_total"),
            repl_catchup_bytes: registry.counter("cluster.catchup_bytes_total"),
            failovers: registry.counter("cluster.failovers_total"),
            diff_bytes_raw: registry.counter("wire.diff_bytes_raw_total"),
            diff_bytes_sent: registry.counter("wire.diff_bytes_sent_total"),
            enc_cache_hits: registry.counter("server.enc_cache.hits_total"),
            enc_cache_misses: registry.counter("server.enc_cache.misses_total"),
            registry,
        }
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new(Arc::new(Registry::new()))
    }
}

impl fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("requests", &self.requests.get())
            .field("errors", &self.errors.get())
            .finish_non_exhaustive()
    }
}
