//! Segment checkpointing.
//!
//! "As partial protection against server failure, InterWeave periodically
//! checkpoints segments and their metadata to persistent storage." (§2.2)
//!
//! One file per segment (`<escaped name>.iwck`), written atomically via a
//! temp file + rename. The format reuses the wire codec, so a checkpoint
//! is readable by any architecture. The same image (see
//! [`encode_segment`]/[`decode_segment`]) is what a cluster primary ships
//! in `Request::SyncFull` to bring a lagging backup up to date, so a
//! synced backup is bit-identical to a recovered checkpoint.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use iw_wire::codec::{WireReader, WireWriter};
use iw_wire::tdesc::{decode_type, encode_type};

use crate::error::ServerError;
use crate::segment::ServerSegment;

const MAGIC: &[u8; 4] = b"IWCK";
const FORMAT_VERSION: u32 = 1;

/// Escapes a segment name into a safe file name.
fn file_name(segment: &str) -> String {
    let mut out = String::with_capacity(segment.len() + 5);
    for c in segment.chars() {
        match c {
            '/' => out.push_str("%2F"),
            '%' => out.push_str("%25"),
            c => out.push(c),
        }
    }
    out.push_str(".iwck");
    out
}

/// Serializes a segment into its machine-independent checkpoint image
/// (also the `SyncFull` replication payload).
pub fn encode_segment(seg: &mut ServerSegment) -> Result<Bytes, ServerError> {
    let mut w = WireWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_str(&seg.name);
    w.put_u64(seg.version());
    w.put_u32(seg.next_serial());

    let types: Vec<_> = seg.types_iter().map(|(t, v)| (t.clone(), v)).collect();
    w.put_u32(types.len() as u32);
    for (ty, intro) in &types {
        encode_type(&mut w, ty);
        w.put_u64(*intro);
    }

    let serials: Vec<u32> = seg.blocks_iter().map(|b| b.serial).collect();
    w.put_u32(serials.len() as u32);
    for serial in serials {
        let (name, type_serial, count, created, version) = {
            let b = seg.block(serial).expect("block listed");
            (
                b.name.clone(),
                b.type_serial,
                b.count,
                b.created_version,
                b.version,
            )
        };
        let data = seg.block_data(serial)?;
        w.put_u32(serial);
        match &name {
            Some(n) => {
                w.put_u8(1);
                w.put_str(n);
            }
            None => w.put_u8(0),
        }
        w.put_u32(type_serial);
        w.put_u32(count);
        w.put_u64(created);
        w.put_u64(version);
        let subs = seg.block_subblock_versions(serial).to_vec();
        w.put_u32(subs.len() as u32);
        for v in subs {
            w.put_u64(v);
        }
        w.put_len_bytes(&data);
    }

    let freed: Vec<(u64, u32, u64)> = seg.freed_iter().collect();
    w.put_u32(freed.len() as u32);
    for (v, serial, created) in freed {
        w.put_u64(v);
        w.put_u32(serial);
        w.put_u64(created);
    }
    Ok(w.finish())
}

/// Writes a checkpoint of `seg` into `dir`.
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn write(dir: &Path, seg: &mut ServerSegment) -> Result<PathBuf, ServerError> {
    fs::create_dir_all(dir)?;
    let image = encode_segment(seg)?;
    let path = dir.join(file_name(&seg.name));
    let tmp = dir.join(format!("{}.tmp", file_name(&seg.name)));
    fs::write(&tmp, image)?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Largest block element count a checkpoint image may claim: keeps a
/// corrupted count field from driving a giant storage allocation before
/// the (truncated) data would fail to parse anyway.
const MAX_BLOCK_COUNT: u32 = 1 << 26;

/// Reconstructs a segment from a checkpoint image (the inverse of
/// [`encode_segment`]).
///
/// # Errors
///
/// [`ServerError::BadCheckpoint`] or a wire error on corrupt or truncated
/// input — never a panic, whatever the bytes.
pub fn decode_segment(bytes: Bytes) -> Result<ServerSegment, ServerError> {
    let mut r = WireReader::new(bytes);
    let bad = |m: &str| ServerError::BadCheckpoint(m.to_string());

    let magic = r.get_bytes(4).map_err(|_| bad("truncated magic"))?;
    if &magic[..] != MAGIC {
        return Err(bad("wrong magic"));
    }
    if r.get_u32()? != FORMAT_VERSION {
        return Err(bad("unsupported format version"));
    }
    let name = r.get_str()?;
    let version = r.get_u64()?;
    let next_serial = r.get_u32()?;

    let mut seg = ServerSegment::new(name);

    let n_types = r.get_u32()?;
    for _ in 0..n_types {
        let ty = decode_type(&mut r)?;
        let intro = r.get_u64()?;
        seg.restore_type(ty, intro);
    }

    let n_blocks = r.get_u32()?;
    for _ in 0..n_blocks {
        let serial = r.get_u32()?;
        let name = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_str()?),
            _ => return Err(bad("bad name flag")),
        };
        let type_serial = r.get_u32()?;
        let count = r.get_u32()?;
        if count > MAX_BLOCK_COUNT {
            return Err(bad("absurd block count"));
        }
        let created = r.get_u64()?;
        let bversion = r.get_u64()?;
        let n_subs = r.get_u32()?;
        if n_subs > 1 << 26 {
            return Err(bad("absurd subblock count"));
        }
        let mut subs = Vec::with_capacity(n_subs as usize);
        for _ in 0..n_subs {
            subs.push(r.get_u64()?);
        }
        let data = r.get_len_bytes()?;
        seg.restore_block(
            serial,
            name,
            type_serial,
            count,
            created,
            bversion,
            subs,
            &data,
        )?;
    }

    let n_freed = r.get_u32()?;
    let mut freed = Vec::with_capacity((n_freed as usize).min(1 << 20));
    for _ in 0..n_freed {
        let v = r.get_u64()?;
        let s = r.get_u32()?;
        let created = r.get_u64()?;
        freed.push((v, s, created));
    }
    seg.restore_state(version, next_serial, freed);
    Ok(seg)
}

/// Restores one segment from a checkpoint file.
///
/// # Errors
///
/// I/O errors and [`ServerError::BadCheckpoint`] on corrupt contents.
pub fn restore(path: &Path) -> Result<ServerSegment, ServerError> {
    let bytes = fs::read(path)?;
    decode_segment(Bytes::from(bytes))
}

/// Restores every checkpoint in `dir`. A corrupt or truncated file is
/// skipped (with a note on stderr) rather than failing the whole
/// recovery: one bad checkpoint must not take down the segments whose
/// checkpoints are healthy.
///
/// # Errors
///
/// I/O errors listing the directory (per-file read and parse failures are
/// skipped, not propagated).
pub fn restore_dir(dir: &Path) -> Result<Vec<ServerSegment>, ServerError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "iwck") {
            match restore(&path) {
                Ok(seg) => out.push(seg),
                Err(e) => eprintln!(
                    "iw-server: skipping corrupt checkpoint {}: {e}",
                    path.display()
                ),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_types::desc::TypeDesc;
    use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("iwck-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn populated_segment() -> ServerSegment {
        let mut seg = ServerSegment::new("host/data");
        let diff = SegmentDiff {
            from_version: 0,
            to_version: 1,
            new_types: vec![(0, TypeDesc::int32()), (1, TypeDesc::string(8))],
            new_blocks: vec![
                NewBlock {
                    serial: 0,
                    name: Some("nums".into()),
                    type_serial: 0,
                    count: 40,
                    data: Bytes::from(vec![0u8; 160]),
                },
                NewBlock {
                    serial: 1,
                    name: None,
                    type_serial: 1,
                    count: 1,
                    data: {
                        let mut w = WireWriter::new();
                        w.put_str("hi");
                        w.finish()
                    },
                },
            ],
            ..Default::default()
        };
        seg.apply_diff(&diff).unwrap();
        // Another version touching one subblock.
        let diff = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![BlockDiff {
                serial: 0,
                runs: vec![DiffRun {
                    start: 20,
                    count: 1,
                    data: Bytes::from(7u32.to_be_bytes().to_vec()),
                }],
            }],
            freed: vec![1],
            ..Default::default()
        };
        seg.apply_diff(&diff).unwrap();
        seg
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let dir = temp_dir("rt");
        let mut seg = populated_segment();
        let path = write(&dir, &mut seg).unwrap();
        let mut back = restore(&path).unwrap();

        assert_eq!(back.name, "host/data");
        assert_eq!(back.version(), seg.version());
        assert_eq!(back.next_serial(), seg.next_serial());
        assert_eq!(back.next_type_serial(), seg.next_type_serial());
        assert_eq!(back.block_count(), seg.block_count());
        assert_eq!(back.total_prims(), seg.total_prims());
        assert_eq!(
            back.block_subblock_versions(0),
            seg.block_subblock_versions(0)
        );
        assert_eq!(back.block_data(0).unwrap(), seg.block_data(0).unwrap());

        // A stale client update built from the restored segment matches
        // one built from the original (bypassing the original's diff
        // cache, which the checkpoint intentionally does not persist).
        seg.clear_diff_cache();
        let a = seg.collect_update(99, 1).unwrap();
        let b = back.collect_update(99, 1).unwrap();
        assert_eq!(a, b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_dir_finds_all_segments() {
        let dir = temp_dir("dir");
        let mut a = populated_segment();
        let mut b = ServerSegment::new("host/other");
        write(&dir, &mut a).unwrap();
        write(&dir, &mut b).unwrap();
        let segs = restore_dir(&dir).unwrap();
        let mut names: Vec<&str> = segs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["host/data", "host/other"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_missing_dir_is_empty() {
        let segs = restore_dir(Path::new("/nonexistent/iw-nowhere")).unwrap();
        assert!(segs.is_empty());
    }

    #[test]
    fn corrupt_file_rejected() {
        let dir = temp_dir("bad");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.iwck");
        fs::write(&path, b"NOTAMAGIC").unwrap();
        assert!(matches!(restore(&path), Err(ServerError::BadCheckpoint(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoints_error_cleanly() {
        let image = encode_segment(&mut populated_segment()).unwrap();
        // Every strict prefix must fail with a clean error (the format
        // has no optional tail), and must never panic.
        for len in (0..image.len())
            .step_by(7)
            .chain(image.len() - 3..image.len())
        {
            let err = decode_segment(image.slice(0..len));
            assert!(err.is_err(), "truncation at {len} decoded successfully");
        }
    }

    #[test]
    fn bit_flipped_checkpoints_never_panic() {
        let image = encode_segment(&mut populated_segment()).unwrap().to_vec();
        for pos in (0..image.len()).step_by(3) {
            for bit in [0u8, 3, 7] {
                let mut corrupt = image.clone();
                corrupt[pos] ^= 1 << bit;
                // A flip in block payload bytes can still decode to a
                // (different) valid segment; the contract is only that
                // decode returns instead of panicking or ballooning.
                let _ = decode_segment(Bytes::from(corrupt));
            }
        }
    }

    #[test]
    fn restore_dir_skips_corrupt_files_loads_healthy_ones() {
        let dir = temp_dir("skip");
        let mut good = populated_segment();
        write(&dir, &mut good).unwrap();
        // One truncated image and one with garbage magic, both *.iwck.
        let image = encode_segment(&mut populated_segment()).unwrap();
        fs::write(dir.join("truncated.iwck"), &image[..image.len() / 2]).unwrap();
        fs::write(dir.join("garbage.iwck"), b"NOTAMAGIC").unwrap();
        let segs = restore_dir(&dir).unwrap();
        assert_eq!(segs.len(), 1, "only the healthy checkpoint loads");
        assert_eq!(segs[0].name, "host/data");
        assert_eq!(segs[0].version(), good.version());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn image_roundtrip_is_bit_identical() {
        let mut seg = populated_segment();
        let image = encode_segment(&mut seg).unwrap();
        let mut back = decode_segment(image.clone()).unwrap();
        assert_eq!(encode_segment(&mut back).unwrap(), image);
    }

    #[test]
    fn file_name_escaping() {
        assert_eq!(file_name("a/b"), "a%2Fb.iwck");
        assert_eq!(file_name("a%b"), "a%25b.iwck");
    }
}
