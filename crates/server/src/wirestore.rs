//! Wire-format block storage.
//!
//! "To avoid an extra level of translation, the server stores both data and
//! type descriptors in wire format. … In order to avoid unnecessary data
//! relocation, MIPs and character string data are stored separately from
//! their blocks, since they can be of variable size." (§3.2)
//!
//! A [`WireStore`] holds a block as:
//!
//! - a *fixed image*: the big-endian wire bytes of every fixed-size
//!   primitive, packed; each variable-length primitive (string or MIP)
//!   occupies a 4-byte slot *reference* into
//! - a *variable table*: the out-of-line strings/MIPs.
//!
//! Offsets into the fixed image come from a [`FlatLayout`] computed over a
//! pseudo-architecture whose "local format" is exactly this packed wire
//! layout (alignment 1 everywhere, 4-byte pointers), applied to a
//! *storage descriptor* in which `string`/`pointer` primitives are
//! replaced by 4-byte slot references. Primitive offsets are machine
//! independent, so they line up with client-side layouts by construction.

use std::collections::HashMap;
use std::sync::Arc;

use iw_types::arch::{Endian, MachineArch};
use iw_types::desc::{PrimKind, TypeDesc, TypeKind};
use iw_types::flat::FlatLayout;
use iw_wire::codec::{WireError, WireReader, WireWriter};

/// The pseudo-architecture describing packed wire storage.
pub fn wire_arch() -> MachineArch {
    MachineArch {
        name: "wire-store",
        endian: Endian::Big,
        pointer_size: 4, // a variable-table slot reference
        pointer_align: 1,
        int16_align: 1,
        int32_align: 1,
        int64_align: 1,
        float32_align: 1,
        float64_align: 1,
        word_size: 4,
    }
}

/// Rewrites `ty`, replacing every variable-length primitive with a 4-byte
/// slot reference (`int`), so its [`FlatLayout`] on [`wire_arch`] yields
/// fixed-image offsets.
fn storage_type(ty: &TypeDesc, memo: &mut HashMap<TypeDesc, TypeDesc>) -> TypeDesc {
    if let Some(t) = memo.get(ty) {
        return t.clone();
    }
    let out = match ty.kind() {
        TypeKind::Prim(PrimKind::Str { .. }) | TypeKind::Prim(PrimKind::Ptr) => TypeDesc::int32(),
        TypeKind::Prim(_) => ty.clone(),
        TypeKind::Array { elem, len } => TypeDesc::array(storage_type(elem, memo), *len),
        TypeKind::Struct { name, fields } => TypeDesc::structure(
            name.clone(),
            fields
                .iter()
                .map(|f| (f.name.as_str(), storage_type(&f.ty, memo)))
                .collect(),
        ),
    };
    memo.insert(ty.clone(), out.clone());
    out
}

/// Shared, per-type layout information for wire storage.
#[derive(Debug, Clone)]
pub struct StoreLayout {
    /// Offsets of every primitive in the packed fixed image.
    pub storage: Arc<FlatLayout>,
    /// True primitive kinds by the same machine-independent prim offsets.
    pub kinds: Arc<FlatLayout>,
}

impl StoreLayout {
    /// Computes the layout for `count` elements of `ty`.
    pub fn new(ty: &TypeDesc, count: u32) -> Self {
        let block_ty = if count == 1 {
            ty.clone()
        } else {
            TypeDesc::array(ty.clone(), count)
        };
        let mut memo = HashMap::new();
        let st = storage_type(&block_ty, &mut memo);
        StoreLayout {
            storage: Arc::new(FlatLayout::new(&st, &wire_arch())),
            kinds: Arc::new(FlatLayout::new(&block_ty, &wire_arch())),
        }
    }

    /// Number of primitive data units in the block.
    pub fn prim_count(&self) -> u64 {
        self.storage.prim_count()
    }

    /// Bytes in the packed fixed image.
    pub fn fixed_size(&self) -> u32 {
        self.storage.local_size()
    }
}

/// One block's wire-format contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireStore {
    /// Packed big-endian fixed image (variable prims hold slot indices).
    fixed: Vec<u8>,
    /// Out-of-line variable-length items (strings and MIPs).
    vars: Vec<String>,
}

impl WireStore {
    /// Creates zeroed storage for a block laid out by `layout`. Every
    /// variable primitive gets its own (empty) slot up front, assigned in
    /// primitive order.
    pub fn new(layout: &StoreLayout) -> Self {
        let mut fixed = vec![0u8; layout.fixed_size() as usize];
        let mut vars = Vec::new();
        for (sp, kp) in layout.storage.iter().zip(layout.kinds.iter()) {
            debug_assert_eq!(sp.prim_off, kp.prim_off);
            if kp.kind.is_variable() {
                let slot = vars.len() as u32;
                vars.push(String::new());
                fixed[sp.local_off as usize..sp.local_off as usize + 4]
                    .copy_from_slice(&slot.to_be_bytes());
            }
        }
        WireStore { fixed, vars }
    }

    /// Bytes held in the fixed image (diagnostics).
    pub fn fixed_len(&self) -> usize {
        self.fixed.len()
    }

    /// Number of variable slots (diagnostics).
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    fn slot_at(&self, off: usize) -> Result<usize, WireError> {
        let raw: [u8; 4] =
            self.fixed[off..off + 4]
                .try_into()
                .map_err(|_| WireError::UnexpectedEof {
                    wanted: 4,
                    available: 0,
                })?;
        let slot = u32::from_be_bytes(raw) as usize;
        if slot >= self.vars.len() {
            return Err(WireError::LengthOverflow { len: slot as u64 });
        }
        Ok(slot)
    }

    /// Encodes primitives `[start, start+count)` to wire format, appending
    /// to `w` — the server side of diff construction. Because the fixed
    /// image *is* packed wire format, a run of fixed-size primitives is a
    /// single copy; variable primitives emit their out-of-line items.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOverflow`] when the range exceeds the block.
    pub fn extract(
        &self,
        layout: &StoreLayout,
        start: u64,
        count: u64,
        w: &mut WireWriter,
    ) -> Result<(), WireError> {
        if start + count > layout.prim_count() {
            return Err(WireError::LengthOverflow { len: start + count });
        }
        let mut remaining = count;
        // The fixed image is packed, so the storage offset advances
        // deterministically (wire size per fixed prim, 4 bytes per
        // variable slot): one seek up front, arithmetic after.
        let mut cursor = layout
            .storage
            .prim_at(start)
            .map(|p| p.local_off as usize)
            .unwrap_or(self.fixed.len());
        for mut krun in layout.kinds.seek_prim_runs(start) {
            if remaining == 0 {
                break;
            }
            krun.count = krun.count.min(remaining.min(u64::from(u32::MAX)) as u32);
            remaining -= u64::from(krun.count);
            let s0 = cursor;
            if let Some(size) = krun.kind.wire_size() {
                // Packed storage: the whole run is contiguous.
                let len = size as usize * krun.count as usize;
                w.put_bytes(&self.fixed[s0..s0 + len]);
                cursor += len;
            } else {
                for k in 0..krun.count as usize {
                    let off = s0 + k * 4;
                    let slot = self.slot_at(off)?;
                    w.put_str(&self.vars[slot]);
                }
                cursor += 4 * krun.count as usize;
            }
        }
        Ok(())
    }

    /// Decodes primitives `[start, start+count)` from wire format in `r`,
    /// installing them — the server side of diff application. Fixed runs
    /// are single copies into the packed image.
    ///
    /// # Errors
    ///
    /// Decoding errors from `r`; [`WireError::LengthOverflow`] when the
    /// range exceeds the block.
    pub fn apply(
        &mut self,
        layout: &StoreLayout,
        start: u64,
        count: u64,
        r: &mut WireReader,
    ) -> Result<(), WireError> {
        if start + count > layout.prim_count() {
            return Err(WireError::LengthOverflow { len: start + count });
        }
        let mut remaining = count;
        let mut cursor = layout
            .storage
            .prim_at(start)
            .map(|p| p.local_off as usize)
            .unwrap_or(self.fixed.len());
        for mut krun in layout.kinds.seek_prim_runs(start) {
            if remaining == 0 {
                break;
            }
            krun.count = krun.count.min(remaining.min(u64::from(u32::MAX)) as u32);
            remaining -= u64::from(krun.count);
            let s0 = cursor;
            if let Some(size) = krun.kind.wire_size() {
                let len = size as usize * krun.count as usize;
                r.copy_into(&mut self.fixed[s0..s0 + len])?;
                cursor += len;
            } else {
                for k in 0..krun.count as usize {
                    let off = s0 + k * 4;
                    let s = r.get_str()?;
                    let slot = self.slot_at(off)?;
                    self.vars[slot] = s;
                }
                cursor += 4 * krun.count as usize;
            }
        }
        Ok(())
    }

    /// Encodes the whole block (convenience for full transfers).
    ///
    /// # Errors
    ///
    /// As [`WireStore::extract`].
    pub fn extract_all(&self, layout: &StoreLayout) -> Result<bytes::Bytes, WireError> {
        let mut w = WireWriter::with_capacity(self.fixed.len());
        self.extract(layout, 0, layout.prim_count(), &mut w)?;
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn mix_ty() -> TypeDesc {
        TypeDesc::structure(
            "mix",
            vec![
                ("i", TypeDesc::int32()),
                ("s", TypeDesc::string(16)),
                ("d", TypeDesc::float64()),
                ("p", TypeDesc::pointer()),
            ],
        )
    }

    #[test]
    fn layout_geometry() {
        let l = StoreLayout::new(&mix_ty(), 3);
        assert_eq!(l.prim_count(), 12);
        // per element: 4 (int) + 4 (slot) + 8 (double) + 4 (slot) = 20
        assert_eq!(l.fixed_size(), 60);
        let store = WireStore::new(&l);
        assert_eq!(store.fixed_len(), 60);
        assert_eq!(store.var_count(), 6);
    }

    #[test]
    fn scalar_int_layout() {
        let l = StoreLayout::new(&TypeDesc::int32(), 100);
        assert_eq!(l.prim_count(), 100);
        assert_eq!(l.fixed_size(), 400);
        assert_eq!(WireStore::new(&l).var_count(), 0);
    }

    fn wire_of_mix_elem(i: i32, s: &str, d: f64, p: &str) -> Bytes {
        let mut w = WireWriter::new();
        w.put_u32(i as u32);
        w.put_str(s);
        w.put_f64(d);
        w.put_str(p);
        w.finish()
    }

    #[test]
    fn apply_then_extract_roundtrips() {
        let l = StoreLayout::new(&mix_ty(), 2);
        let mut store = WireStore::new(&l);
        let mut payload = WireWriter::new();
        payload.put_bytes(&wire_of_mix_elem(7, "hello", 2.5, "seg#blk#1"));
        payload.put_bytes(&wire_of_mix_elem(-9, "world", -0.5, ""));
        let mut r = WireReader::new(payload.finish());
        store.apply(&l, 0, 8, &mut r).unwrap();
        assert!(r.is_empty());

        let out = store.extract_all(&l).unwrap();
        let mut rr = WireReader::new(out);
        assert_eq!(rr.get_u32().unwrap(), 7);
        assert_eq!(rr.get_str().unwrap(), "hello");
        assert_eq!(rr.get_f64().unwrap(), 2.5);
        assert_eq!(rr.get_str().unwrap(), "seg#blk#1");
        assert_eq!(rr.get_u32().unwrap() as i32, -9);
        assert_eq!(rr.get_str().unwrap(), "world");
        assert_eq!(rr.get_f64().unwrap(), -0.5);
        assert_eq!(rr.get_str().unwrap(), "");
    }

    #[test]
    fn partial_update_touches_only_range() {
        let l = StoreLayout::new(&mix_ty(), 2);
        let mut store = WireStore::new(&l);
        // Update prims 4..6 (second element's int and string).
        let mut w = WireWriter::new();
        w.put_u32(42);
        w.put_str("mid");
        let mut r = WireReader::new(w.finish());
        store.apply(&l, 4, 2, &mut r).unwrap();

        let mut out = WireWriter::new();
        store.extract(&l, 4, 2, &mut out).unwrap();
        let mut rr = WireReader::new(out.finish());
        assert_eq!(rr.get_u32().unwrap(), 42);
        assert_eq!(rr.get_str().unwrap(), "mid");
        // Element 0 untouched (zeroed).
        let mut out0 = WireWriter::new();
        store.extract(&l, 0, 1, &mut out0).unwrap();
        let mut r0 = WireReader::new(out0.finish());
        assert_eq!(r0.get_u32().unwrap(), 0);
    }

    #[test]
    fn var_update_reuses_slot() {
        let l = StoreLayout::new(&TypeDesc::string(32), 1);
        let mut store = WireStore::new(&l);
        for s in ["a", "bb", "a-much-longer-string", ""] {
            let mut w = WireWriter::new();
            w.put_str(s);
            let mut r = WireReader::new(w.finish());
            store.apply(&l, 0, 1, &mut r).unwrap();
            assert_eq!(store.var_count(), 1, "no slot churn");
            let out = store.extract_all(&l).unwrap();
            let mut rr = WireReader::new(out);
            assert_eq!(rr.get_str().unwrap(), s);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let l = StoreLayout::new(&TypeDesc::int32(), 4);
        let store = WireStore::new(&l);
        let mut w = WireWriter::new();
        assert!(store.extract(&l, 3, 2, &mut w).is_err());
        let mut store = store;
        let mut r = WireReader::new(Bytes::from_static(&[0; 64]));
        assert!(store.apply(&l, 4, 1, &mut r).is_err());
    }

    #[test]
    fn truncated_apply_rejected() {
        let l = StoreLayout::new(&TypeDesc::int32(), 4);
        let mut store = WireStore::new(&l);
        let mut r = WireReader::new(Bytes::from_static(&[0, 0])); // 2 bytes < 4
        assert!(matches!(
            store.apply(&l, 0, 1, &mut r),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn nested_arrays_of_strings() {
        let ty = TypeDesc::structure("s", vec![("tags", TypeDesc::array(TypeDesc::string(8), 3))]);
        let l = StoreLayout::new(&ty, 2);
        assert_eq!(l.prim_count(), 6);
        let mut store = WireStore::new(&l);
        assert_eq!(store.var_count(), 6);
        let mut w = WireWriter::new();
        for s in ["a", "b", "c", "d", "e", "f"] {
            w.put_str(s);
        }
        let mut r = WireReader::new(w.finish());
        store.apply(&l, 0, 6, &mut r).unwrap();
        let out = store.extract_all(&l).unwrap();
        let mut rr = WireReader::new(out);
        for s in ["a", "b", "c", "d", "e", "f"] {
            assert_eq!(rr.get_str().unwrap(), s);
        }
    }
}
