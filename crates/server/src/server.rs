//! The InterWeave server: segment table, client registry, and protocol
//! front-end.
//!
//! "An InterWeave server can manage an arbitrary number of segments, and
//! maintains an up-to-date copy of each of them. It also controls access
//! to these segments." (§3.2)
//!
//! A [`Server`] implements [`iw_proto::Handler`], so it can sit behind the
//! loopback transport (in-process experiments) or [`iw_proto::TcpServer`]
//! (real sockets) unchanged.
//!
//! # Concurrency
//!
//! `handle_request` takes `&self`: the server is internally sharded so
//! requests against *different* segments execute fully in parallel, and
//! version probes (`Poll` answered `UpToDate`) on the *same* segment
//! share a read lock. The paper's server tracks versions and collects
//! diffs independently per segment, so the sharding follows the data:
//!
//! - the segment table is a `RwLock<HashMap>` of per-segment
//!   `Arc<RwLock<ServerSegment>>` shards (the outer lock is only written
//!   on segment creation / full-sync install);
//! - the reader-writer *client* lock table, the client registry, and the
//!   commit hook each sit behind their own narrow lock.
//!
//! Lock-ordering hierarchy (documented in DESIGN.md §6a): **segment
//! table → segment shard → lock table → ship queue**. A thread may skip
//! levels but never acquires leftward while holding rightward, which
//! makes deadlock impossible; no thread ever holds two segment shards at
//! once (multi-segment commits lock one segment at a time). The commit
//! hook fires *under the segment shard's write lock*, giving the cluster
//! primary a per-segment commit sequence: ship order equals commit
//! order, preserving FIFO replication without a global mutex.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use iw_durable::{DiffStore, DurabilityMode, DurableOptions, Recovery};
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, PeerCaps};
use iw_telemetry::{Registry, Snapshot};
use iw_wire::diff::SegmentDiff;

use crate::checkpoint;
use crate::error::ServerError;
use crate::locks::LockTable;
use crate::metrics::ServerMetrics;
use crate::segment::ServerSegment;

/// Per-client bookkeeping.
#[derive(Debug, Clone)]
struct ClientInfo {
    /// Free-form description from the Hello (architecture etc.).
    #[allow(dead_code)]
    info: String,
    /// Wire capabilities negotiated at Hello time (client's advertised
    /// set ∩ what this server offers). Replies to this client carry
    /// diffs in the best revision both sides speak.
    caps: PeerCaps,
}

/// One shard of the segment table.
type SharedSegment = Arc<RwLock<ServerSegment>>;

/// Called under the owning segment's write lock immediately after a
/// client diff commits (write-release or transaction commit). Because
/// the shard lock is still held, invocations for one segment happen in
/// version order — the per-segment commit sequence replication relies
/// on.
pub type CommitHook = Arc<dyn Fn(&str, &SegmentDiff) + Send + Sync>;

/// An InterWeave server instance.
#[derive(Debug, Default)]
pub struct Server {
    /// Segment table: name → independently locked segment shard.
    segments: RwLock<HashMap<String, SharedSegment>>,
    /// Client reader/writer lock table (narrow global lock; grants are
    /// non-blocking so it is never held across I/O or diff work).
    locks: Mutex<LockTable>,
    clients: Mutex<HashMap<u64, ClientInfo>>,
    next_client: AtomicU64,
    /// When set, segments are checkpointed to this directory every
    /// `checkpoint_interval` versions ("as partial protection against
    /// server failure, InterWeave periodically checkpoints segments and
    /// their metadata to persistent storage", §2.2).
    checkpoint_dir: Option<PathBuf>,
    checkpoint_interval: u64,
    /// Observer for committed client diffs (the cluster primary's ship
    /// queue feed). Fired under the segment write lock.
    commit_hook: RwLock<Option<CommitHook>>,
    /// The durable diff store (`--data-dir`). Committed diffs are
    /// persisted at the same point the commit hook fires — still under
    /// the segment shard's write lock, so the WAL sees every segment's
    /// commits in version order and the PR-3 lock hierarchy gains one
    /// bottom level (… → ship queue → wal) without reordering.
    durable: Option<Arc<DiffStore>>,
    /// High-water mark of `metrics.concurrent_requests`.
    peak_concurrent: AtomicU64,
    /// Wire capabilities this server *withholds* from negotiation,
    /// stored inverted so the derived `Default` (0) means "offer
    /// everything". `set_wire_caps(PeerCaps::NONE)` turns the server
    /// into a v1-only peer for interop tests.
    wire_caps_disabled: std::sync::atomic::AtomicU8,
    metrics: ServerMetrics,
}

/// RAII in-flight accounting for one request: created by
/// [`Server::begin_request`], decrements the concurrency gauge and
/// accumulates `server.busy_us_total` on drop — even when the handler
/// unwinds (a panicking worker must not wedge the gauge).
///
/// Handlers that wrap the server and do their own wire work (the
/// [`Handler`](iw_proto::Handler) impl here, iw-cluster's `Primary`)
/// hold one of these across decode → dispatch → encode, so the busy
/// counter reflects the full span a worker thread spends on a request.
pub struct RequestGuard<'a> {
    metrics: &'a ServerMetrics,
    started: Instant,
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        self.metrics.concurrent_requests.sub(1);
        self.metrics
            .busy_us
            .add(self.started.elapsed().as_micros() as u64);
    }
}

impl std::fmt::Debug for RequestGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestGuard").finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with no segments.
    pub fn new() -> Self {
        Server::default()
    }

    /// Enables periodic checkpointing: every `interval` versions of a
    /// segment, its state is written under `dir`.
    pub fn with_checkpointing(dir: PathBuf, interval: u64) -> Self {
        Server {
            checkpoint_dir: Some(dir),
            checkpoint_interval: interval.max(1),
            ..Server::default()
        }
    }

    /// Restores every segment checkpoint found under `dir` and enables
    /// checkpointing there.
    ///
    /// # Errors
    ///
    /// I/O and corruption errors from checkpoint files.
    pub fn recover(dir: PathBuf, interval: u64) -> Result<Self, ServerError> {
        let server = Server::with_checkpointing(dir.clone(), interval);
        {
            let mut map = server.segments.write();
            for seg in checkpoint::restore_dir(&dir)? {
                map.insert(seg.name.clone(), Arc::new(RwLock::new(seg)));
            }
        }
        Ok(server)
    }

    /// Opens (or creates) the durable diff store at `dir` and recovers
    /// the server's segments from it: newest checkpoint image per
    /// segment, then the WAL tail replayed diff by diff. Returns the
    /// [`Recovery`] report so callers can surface warnings (torn tails,
    /// corrupt records) and the replay count.
    ///
    /// With [`DurabilityMode::Off`] no store is opened and the server
    /// behaves exactly like [`Server::new`].
    ///
    /// # Errors
    ///
    /// I/O errors creating the store. Damaged store *contents* are not
    /// errors — they surface as [`Recovery::warnings`], and a segment
    /// whose checkpoint image no longer decodes is skipped (with a
    /// warning) rather than taking the server down.
    pub fn with_durability(
        dir: PathBuf,
        opts: DurableOptions,
    ) -> Result<(Self, Recovery), ServerError> {
        let server = Server::default();
        if opts.mode == DurabilityMode::Off {
            return Ok((server, Recovery::default()));
        }
        let (store, mut recovery) = DiffStore::open(dir, opts, server.registry())?;
        {
            let mut map = server.segments.write();
            for sr in &recovery.segments {
                let mut seg = match &sr.checkpoint {
                    Some((version, image)) => match checkpoint::decode_segment(image.clone()) {
                        Ok(seg) if seg.name == sr.name && seg.version() == *version => seg,
                        Ok(seg) => {
                            recovery.warnings.push(format!(
                                "checkpoint image mismatch for `{}` (image is `{}` v{}); segment skipped",
                                sr.name,
                                seg.name,
                                seg.version()
                            ));
                            continue;
                        }
                        Err(e) => {
                            recovery.warnings.push(format!(
                                "checkpoint image for `{}` failed to decode ({e}); segment skipped",
                                sr.name
                            ));
                            continue;
                        }
                    },
                    None => ServerSegment::new(&sr.name),
                };
                for diff in &sr.tail {
                    if let Err(e) = seg.apply_diff(diff) {
                        // The store already filtered for a contiguous
                        // chain, so this is a codec-level surprise: keep
                        // the prefix that applied and say so.
                        recovery.warnings.push(format!(
                            "replay stopped for `{}` at v{} ({e})",
                            sr.name,
                            seg.version()
                        ));
                        break;
                    }
                }
                map.insert(sr.name.clone(), Arc::new(RwLock::new(seg)));
            }
        }
        let mut server = server;
        server.durable = Some(Arc::new(store));
        Ok((server, recovery))
    }

    /// The active durability mode ([`DurabilityMode::Off`] unless the
    /// server was built by [`Server::with_durability`]).
    pub fn durability_mode(&self) -> DurabilityMode {
        self.durable
            .as_ref()
            .map(|s| s.options().mode)
            .unwrap_or(DurabilityMode::Off)
    }

    /// Installs the commit observer (see [`CommitHook`]). The cluster
    /// primary uses this to enqueue every committed diff for replication
    /// in per-segment commit order.
    pub fn set_commit_hook(&self, hook: CommitHook) {
        *self.commit_hook.write() = Some(hook);
    }

    /// Registers a client and returns its id.
    ///
    /// A client re-registering after failing over from another replica
    /// marks its info string with `"failover"`, which is how the
    /// `cluster.failovers_total` counter on the surviving replica counts
    /// failover events without a dedicated message type.
    pub fn hello(&self, info: &str) -> u64 {
        if info.contains("failover") {
            self.metrics.failovers.inc();
        }
        let id = self.next_client.fetch_add(1, Ordering::Relaxed) + 1;
        self.clients.lock().insert(
            id,
            ClientInfo {
                info: info.to_string(),
                caps: PeerCaps::NONE,
            },
        );
        id
    }

    /// The wire capabilities this server offers in Hello negotiation.
    pub fn wire_caps(&self) -> PeerCaps {
        let disabled = self.wire_caps_disabled.load(Ordering::Relaxed);
        PeerCaps::from_byte(PeerCaps::ALL.byte() & !disabled)
    }

    /// Restricts what the server offers peers (e.g. [`PeerCaps::NONE`]
    /// makes it behave like a pre-v2 build for interop tests). Affects
    /// clients that say Hello *after* the call.
    pub fn set_wire_caps(&self, caps: PeerCaps) {
        self.wire_caps_disabled
            .store(!caps.byte(), Ordering::Relaxed);
    }

    /// The capabilities negotiated with a registered client (v1 for
    /// unknown ids — never send a revision the peer may not decode).
    fn client_caps(&self, client: u64) -> PeerCaps {
        self.clients
            .lock()
            .get(&client)
            .map_or(PeerCaps::NONE, |c| c.caps)
    }

    /// Opens (or creates) a segment, returning its current version.
    pub fn open(&self, segment: &str) -> u64 {
        self.segment_or_insert(segment).read().version()
    }

    /// Looks up a segment's shard (cheap: outer table read lock only).
    fn segment_arc(&self, name: &str) -> Option<SharedSegment> {
        self.segments.read().get(name).cloned()
    }

    /// Looks up or creates a segment's shard.
    fn segment_or_insert(&self, name: &str) -> SharedSegment {
        if let Some(seg) = self.segment_arc(name) {
            return seg;
        }
        self.segments
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(RwLock::new(ServerSegment::new(name))))
            .clone()
    }

    /// Acquires a shard's read lock, accounting the wait.
    fn read_seg<'a>(&self, seg: &'a RwLock<ServerSegment>) -> RwLockReadGuard<'a, ServerSegment> {
        self.metrics.segment_lock_wait.add(1);
        let started = Instant::now();
        let guard = seg.read();
        self.metrics.segment_lock_wait.sub(1);
        self.metrics
            .segment_lock_wait_us
            .record_duration(started.elapsed());
        guard
    }

    /// Acquires a shard's write lock, accounting the wait.
    fn write_seg<'a>(&self, seg: &'a RwLock<ServerSegment>) -> RwLockWriteGuard<'a, ServerSegment> {
        self.metrics.segment_lock_wait.add(1);
        let started = Instant::now();
        let guard = seg.write();
        self.metrics.segment_lock_wait.sub(1);
        self.metrics
            .segment_lock_wait_us
            .record_duration(started.elapsed());
        guard
    }

    /// Runs `f` with shared access to a segment's state (benchmarks,
    /// tests, snapshotting).
    pub fn with_segment<R>(&self, name: &str, f: impl FnOnce(&ServerSegment) -> R) -> Option<R> {
        let seg = self.segment_arc(name)?;
        let guard = self.read_seg(&seg);
        Some(f(&guard))
    }

    /// Runs `f` with exclusive access to a segment's state (benchmarks,
    /// tests, the cluster primary's full-sync encoder).
    pub fn with_segment_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut ServerSegment) -> R,
    ) -> Option<R> {
        let seg = self.segment_arc(name)?;
        let mut guard = self.write_seg(&seg);
        Some(f(&mut guard))
    }

    /// A segment's current version, if it exists.
    pub fn segment_version(&self, name: &str) -> Option<u64> {
        self.with_segment(name, ServerSegment::version)
    }

    /// Names of every segment this server holds (the cluster primary
    /// walks these to full-sync a newly attached backup).
    pub fn segment_names(&self) -> Vec<String> {
        self.segments.read().keys().cloned().collect()
    }

    /// Every segment with its current version, sorted by name — the
    /// payload of [`Reply::Frontier`]. Versions are read one shard at a
    /// time (never two shard locks at once), so the frontier is a
    /// per-segment-consistent snapshot, not a cross-segment one — all a
    /// staleness floor needs.
    pub fn frontier(&self) -> Vec<(String, u64)> {
        let mut names = self.segment_names();
        names.sort_unstable();
        names
            .into_iter()
            .filter_map(|n| {
                let v = self.segment_version(&n)?;
                Some((n, v))
            })
            .collect()
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.lock().len()
    }

    /// Drops a client, releasing all its locks and forgetting its
    /// per-segment Diff-coherence counters (so a reused id cannot inherit
    /// stale accumulated-change counts, and the counters do not grow
    /// without bound as clients come and go).
    pub fn disconnect(&self, client: u64) {
        self.clients.lock().remove(&client);
        {
            let mut locks = self.locks.lock();
            let before = locks.held_count();
            locks.release_all(client);
            self.metrics
                .lock_released
                .add((before - locks.held_count()) as u64);
        }
        let shards: Vec<SharedSegment> = self.segments.read().values().cloned().collect();
        for seg in shards {
            self.write_seg(&seg).drop_client(client);
        }
    }

    /// The server's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        self.metrics.registry()
    }

    /// Point-in-time copy of every server metric: the registry's
    /// counters/histograms, instantaneous gauges refreshed first, plus
    /// synthetic per-segment entries (`server.segment.<name>.*`) and
    /// aggregates of the per-segment ablation counters.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics
            .locks_held
            .set(self.locks.lock().held_count() as i64);
        self.metrics.clients.set(self.client_count() as i64);
        let mut snap = self.metrics.registry().snapshot();
        snap.counters.push((
            "server.concurrent_requests_peak".into(),
            self.peak_concurrent.load(Ordering::Relaxed),
        ));
        let mut diff_cache_hits = 0u64;
        let mut diff_cache_misses = 0u64;
        let mut chain_compositions = 0u64;
        let mut subblocks_scanned = 0u64;
        let mut pred_hits = 0u64;
        let shards: Vec<(String, SharedSegment)> = self
            .segments
            .read()
            .iter()
            .map(|(n, s)| (n.clone(), s.clone()))
            .collect();
        for (name, shard) in &shards {
            let seg = shard.read();
            diff_cache_hits += seg.diff_cache_hits;
            diff_cache_misses += seg.diff_cache_misses;
            chain_compositions += seg.chain_compositions;
            subblocks_scanned += seg.subblocks_scanned;
            pred_hits += seg.pred_hits;
            snap.counters
                .push((format!("server.segment.{name}.version"), seg.version()));
            snap.gauges.push((
                format!("server.segment.{name}.blocks"),
                seg.block_count() as i64,
            ));
            snap.gauges.push((
                format!("server.segment.{name}.readers"),
                self.locks.lock().reader_count(name) as i64,
            ));
            snap.gauges.push((
                format!("server.segment.{name}.diff_clients"),
                seg.diff_counter_count() as i64,
            ));
        }
        snap.counters
            .push(("server.diff_cache.hits_total".into(), diff_cache_hits));
        snap.counters
            .push(("server.diff_cache.misses_total".into(), diff_cache_misses));
        snap.counters.push((
            "server.diff_cache.chain_compositions_total".into(),
            chain_compositions,
        ));
        snap.counters
            .push(("server.subblocks_scanned_total".into(), subblocks_scanned));
        snap.counters
            .push(("server.pred_hits_total".into(), pred_hits));
        snap.sort();
        snap
    }

    /// Fires the commit hook (if installed) for one committed diff. Must
    /// be called with the segment's write lock held so the per-segment
    /// invocation order equals the version order.
    fn fire_commit_hook(&self, segment: &str, diff: &SegmentDiff) {
        if let Some(hook) = self.commit_hook.read().as_ref() {
            hook(segment, diff);
        }
    }

    /// Persists one committed diff. Called exactly where the commit hook
    /// fires — under the segment's write lock, after `apply_diff`
    /// succeeded, before the reply is encoded — so the fsync completes
    /// before the client sees the ack: **acked ⇒ durable**. The WAL is
    /// the bottom of the lock hierarchy (below the ship queue), and the
    /// group-commit leader fsyncs outside the WAL mutex, so concurrent
    /// shards stack their records into shared syncs instead of
    /// serializing on the disk.
    ///
    /// An append failure cannot fail the commit (the in-memory apply
    /// already happened); it increments `durable.errors_total` and the
    /// server keeps serving with the durability window open — the
    /// documented tradeoff (DESIGN.md §8).
    fn persist_commit(&self, segment: &str, diff: &SegmentDiff, seg: &mut ServerSegment) {
        let Some(store) = &self.durable else {
            return;
        };
        let _ = store.append_diff(segment, diff);
        if store.options().mode == DurabilityMode::WalCheckpoint
            && seg
                .version()
                .is_multiple_of(store.options().checkpoint_interval.max(1))
        {
            Self::durable_image(store, seg);
        }
    }

    /// Writes a fresh checkpoint image of `seg` into the durable store
    /// (best-effort; an error leaves the previous image intact and is
    /// counted by the store).
    fn durable_image(store: &DiffStore, seg: &mut ServerSegment) -> bool {
        match checkpoint::encode_segment(seg) {
            Ok(image) => store
                .write_checkpoint(&seg.name, seg.version(), &image)
                .is_ok(),
            Err(_) => false,
        }
    }

    /// Runs a log-compaction pass if the store is over its byte
    /// threshold: rotate the WAL, fold every segment's outstanding diff
    /// chain into a fresh checkpoint image, then delete the rotated
    /// files. Called from `dispatch` *after* all commit-path guards are
    /// dropped; images are taken one shard at a time (never two), so the
    /// lock hierarchy holds. Crash-safe at any point: rotation precedes
    /// the images, so no image ever covers a record that was deleted.
    fn maybe_compact(&self) {
        let Some(store) = &self.durable else {
            return;
        };
        if !store.needs_compaction() {
            return;
        }
        match store.begin_compaction() {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // another pass is running / rotate failed
        }
        let mut ok = true;
        for name in self.segment_names() {
            let wrote = self.with_segment_mut(&name, |seg| Self::durable_image(store, seg));
            if wrote != Some(true) {
                ok = false;
            }
        }
        // On any failure the rotated files are kept: recovery reads all
        // log files in sequence order, so an aborted pass costs disk
        // space, never data.
        store.finish_compaction(ok);
    }

    fn acquire(
        &self,
        client: u64,
        segment: &str,
        mode: LockMode,
        have_version: u64,
        coherence: Coherence,
    ) -> Reply {
        let Some(seg) = self.segment_arc(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        // Lock order: segment shard before the client lock table.
        let guard = self.read_seg(&seg);
        if !self.locks.lock().acquire(segment, client, mode) {
            self.metrics.lock_busy.inc();
            return Reply::Busy;
        }
        self.metrics.lock_granted.inc();
        // Writers must start from the current version, so they always get
        // a Full-coherence update; readers follow their model.
        let effective = match mode {
            LockMode::Write => Coherence::Full,
            LockMode::Read => coherence,
        };
        if !guard.needs_update(client, have_version, effective) {
            // Version probe / already-fresh client: shared lock only.
            return Reply::Granted {
                version: guard.version(),
                update: None,
                next_serial: guard.next_serial(),
                next_type_serial: guard.next_type_serial(),
            };
        }
        // The update mutates per-segment state (diff cache, Diff-coherence
        // counters): upgrade to the shard's write lock. The client lock
        // just granted keeps writers out, so the version cannot move
        // between the read and write critical sections.
        drop(guard);
        let mut guard = self.write_seg(&seg);
        match guard.collect_update(client, have_version) {
            Ok(d) => Reply::Granted {
                version: guard.version(),
                update: Some(d),
                next_serial: guard.next_serial(),
                next_type_serial: guard.next_type_serial(),
            },
            Err(e) => {
                self.locks.lock().release(segment, client);
                Reply::Error {
                    message: e.to_string(),
                }
            }
        }
    }

    fn release(&self, client: u64, segment: &str, diff: Option<&SegmentDiff>) -> Reply {
        let Some(seg) = self.segment_arc(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        let version = if let Some(diff) = diff {
            let mut guard = self.write_seg(&seg);
            if !self.locks.lock().is_writer(segment, client) {
                return Reply::Error {
                    message: "release with diff requires the writer lock".into(),
                };
            }
            if let Err(e) = guard.apply_diff(diff) {
                return Reply::Error {
                    message: e.to_string(),
                };
            }
            self.maybe_checkpoint(&mut guard);
            self.persist_commit(segment, diff, &mut guard);
            self.fire_commit_hook(segment, diff);
            guard.version()
        } else {
            self.read_seg(&seg).version()
        };
        if self.locks.lock().release(segment, client) {
            self.metrics.lock_released.inc();
        }
        Reply::Released { version }
    }

    fn commit(&self, client: u64, entries: &[(String, Option<SegmentDiff>)]) -> Reply {
        // Validate everything first: locks held, versions current,
        // segments exist. Nothing is applied unless all entries pass.
        // Segments are locked strictly one at a time (never two shards at
        // once), so multi-segment commits cannot deadlock; the client's
        // writer locks — verified here — freeze every involved version
        // until the apply phase below.
        for (segment, diff) in entries {
            let Some(seg) = self.segment_arc(segment) else {
                return Reply::Error {
                    message: format!("no such segment `{segment}`"),
                };
            };
            let guard = self.read_seg(&seg);
            if !self.locks.lock().is_writer(segment, client) {
                return Reply::Error {
                    message: format!("commit requires the writer lock on `{segment}`"),
                };
            }
            if let Some(d) = diff {
                if d.from_version != guard.version() {
                    return Reply::Error {
                        message: format!(
                            "commit base version {} stale for `{segment}` (current {})",
                            d.from_version,
                            guard.version()
                        ),
                    };
                }
            }
        }
        let mut versions = Vec::with_capacity(entries.len());
        for (segment, diff) in entries {
            let seg = self.segment_arc(segment).expect("validated");
            let mut guard = self.write_seg(&seg);
            if let Some(d) = diff {
                match guard.apply_diff(d) {
                    Ok(v) => {
                        self.maybe_checkpoint(&mut guard);
                        self.persist_commit(segment, d, &mut guard);
                        self.fire_commit_hook(segment, d);
                        versions.push(v);
                    }
                    Err(e) => {
                        // Structural failure after validation indicates a
                        // client bug; report it (earlier entries stand, as
                        // documented for the prototype).
                        return Reply::Error {
                            message: e.to_string(),
                        };
                    }
                }
            } else {
                versions.push(guard.version());
            }
        }
        for (segment, _) in entries {
            if self.locks.lock().release(segment, client) {
                self.metrics.lock_released.inc();
            }
        }
        Reply::Committed { versions }
    }

    fn poll(
        &self,
        client: u64,
        segment: &str,
        have_version: u64,
        coherence: Coherence,
        floor: u64,
    ) -> Reply {
        let Some(seg) = self.segment_arc(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        {
            // The common no-op probe ("is my version recent enough?")
            // takes only the shared lock, so polls never serialize
            // against each other or against same-segment readers.
            let guard = self.read_seg(&seg);
            // The staleness floor is checked under the same lock that
            // guards the version, so a served reply always reflects a
            // version >= floor — replicas can never silently serve data
            // older than the client's coherence predicate allows.
            if guard.version() < floor {
                return Reply::NotFresh {
                    version: guard.version(),
                };
            }
            // The floor constrains the *served* version too: a client
            // whose cache is below it must receive an update even when
            // the coherence model alone would tolerate the distance —
            // `UpToDate` would otherwise leave the client holding data
            // older than the floor it asked for.
            if have_version >= floor && !guard.needs_update(client, have_version, coherence) {
                return Reply::UpToDate;
            }
        }
        let mut guard = self.write_seg(&seg);
        match guard.collect_update(client, have_version) {
            Ok(diff) => Reply::Update { diff },
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        }
    }

    /// Applies one replicated diff (backup role). Idempotent: a diff the
    /// segment already has (retransmitted after a primary restart or a
    /// duplicated ship) is acked without being re-applied.
    fn replicate(&self, segment: &str, from_version: u64, diff: &SegmentDiff) -> Reply {
        let seg = self.segment_or_insert(segment);
        let mut guard = self.write_seg(&seg);
        if diff.to_version <= guard.version() {
            return Reply::Replicated {
                acked_version: guard.version(),
            };
        }
        if from_version != guard.version() || diff.from_version != guard.version() {
            // The primary must fall back to a full catch-up image.
            return Reply::Error {
                message: format!(
                    "replication gap on `{segment}`: have {}, diff is {}..{}",
                    guard.version(),
                    diff.from_version,
                    diff.to_version
                ),
            };
        }
        match guard.apply_diff(diff) {
            Ok(v) => {
                self.metrics.repl_diffs_applied.inc();
                self.maybe_checkpoint(&mut guard);
                // A durable backup logs replicated diffs too, so a
                // restarted backup re-attaches with most state local.
                self.persist_commit(segment, diff, &mut guard);
                Reply::Replicated { acked_version: v }
            }
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        }
    }

    /// Replaces a segment with a full catch-up image (backup role). The
    /// image is a checkpoint encoding, so the installed segment is
    /// bit-identical to the primary's — version, serials, subblock
    /// versions and all.
    fn sync_full(&self, segment: &str, image: &Bytes) -> Reply {
        let seg = match checkpoint::decode_segment(image.clone()) {
            Ok(seg) => seg,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad sync image for `{segment}`: {e}"),
                }
            }
        };
        if seg.name != segment {
            return Reply::Error {
                message: format!("sync image is for `{}`, not `{segment}`", seg.name),
            };
        }
        let v = seg.version();
        self.metrics.repl_syncs_applied.inc();
        self.metrics.repl_catchup_bytes.add(image.len() as u64);
        // Swap the image in place inside the existing shard, so any
        // concurrently held Arc keeps pointing at the live state.
        let shard = self.segment_or_insert(segment);
        let mut guard = self.write_seg(&shard);
        *guard = seg;
        self.maybe_checkpoint(&mut guard);
        // A full sync jumps the version, breaking the WAL's diff chain:
        // persist a full image (any durability mode) so recovery has a
        // base to chain subsequent diff records from.
        if let Some(store) = &self.durable {
            Self::durable_image(store, &mut guard);
        }
        Reply::Replicated { acked_version: v }
    }

    fn maybe_checkpoint(&self, seg: &mut ServerSegment) {
        let Some(dir) = &self.checkpoint_dir else {
            return;
        };
        if seg.version().is_multiple_of(self.checkpoint_interval) {
            // Checkpointing is best-effort; failures must not take the
            // release path down.
            let started = Instant::now();
            if checkpoint::write(dir, seg).is_ok() {
                self.metrics.checkpoints.inc();
            }
            self.metrics
                .checkpoint_us
                .record_duration(started.elapsed());
        }
    }

    /// Opens the in-flight accounting span for one request: bumps the
    /// request and concurrency counters, tracks the concurrency
    /// high-water mark, and returns the guard whose drop closes the
    /// span. Wrapping handlers hold it across their own decode/encode
    /// so `server.busy_us_total` covers the whole in-handler time.
    pub fn begin_request(&self) -> RequestGuard<'_> {
        self.metrics.requests.inc();
        self.metrics.concurrent_requests.add(1);
        let inflight = self.metrics.concurrent_requests.get().max(1) as u64;
        self.peak_concurrent.fetch_max(inflight, Ordering::Relaxed);
        RequestGuard {
            metrics: &self.metrics,
            started: Instant::now(),
        }
    }

    /// Handles one decoded request (the protocol entry point). Safe to
    /// call from any number of threads concurrently.
    pub fn handle_request(&self, req: &Request) -> Reply {
        let _guard = self.begin_request();
        self.dispatch(req)
    }

    /// Dispatches one decoded request *without* opening an accounting
    /// span — the caller must hold a [`RequestGuard`] (wrapping handlers
    /// open it before decoding so the span covers their wire work).
    pub fn dispatch(&self, req: &Request) -> Reply {
        self.metrics.req_kind[req.kind_index()].inc();
        let reply = match req {
            Request::Hello { info } => Reply::welcome(self.hello(info)),
            Request::Open { client: _, segment } => Reply::Opened {
                version: self.open(segment),
            },
            Request::Acquire {
                client,
                segment,
                mode,
                have_version,
                coherence,
            } => self.acquire(*client, segment, *mode, *have_version, *coherence),
            Request::Release {
                client,
                segment,
                diff,
            } => self.release(*client, segment, diff.as_ref()),
            Request::Commit { client, entries } => self.commit(*client, entries),
            Request::Poll {
                client,
                segment,
                have_version,
                coherence,
                floor,
            } => self.poll(*client, segment, *have_version, *coherence, *floor),
            Request::Stats { client: _ } => Reply::Stats {
                snapshot: self.metrics_snapshot(),
            },
            Request::Replicate {
                segment,
                from_version,
                diff,
            } => self.replicate(segment, *from_version, diff),
            Request::SyncFull { segment, image } => self.sync_full(segment, image),
            // Only a cluster primary (iw-cluster's `Primary` wrapper)
            // accepts backups; a bare server refusing keeps a
            // misconfigured `--backup-of` loud instead of silent.
            Request::AttachBackup { .. } => Reply::Error {
                message: "not a cluster primary".into(),
            },
            // Retire a client id (failed-over clients send this against
            // their old id, best-effort). Unknown ids are a no-op, so
            // the reply carries no meaningful version.
            Request::Goodbye { client } => {
                self.disconnect(*client);
                Reply::Released { version: 0 }
            }
            // A bare server advertises no replicas; the cluster wrappers
            // (`Primary`) splice the live advertised set in.
            Request::Frontier { client: _ } => Reply::Frontier {
                segments: self.frontier(),
                replicas: Vec::new(),
            },
        };
        if matches!(reply, Reply::Error { .. }) {
            self.metrics.errors.inc();
        }
        // Commit-shaped requests may have grown the WAL past its
        // threshold; compaction runs here, after every shard guard from
        // the request is gone (lock hierarchy: one shard at a time).
        if matches!(
            req,
            Request::Release { .. }
                | Request::Commit { .. }
                | Request::Replicate { .. }
                | Request::SyncFull { .. }
        ) {
            self.maybe_compact();
        }
        reply
    }

    /// Encodes `reply` in the wire revision negotiated with the client
    /// behind `req`, and accounts outbound diff bytes.
    ///
    /// A Hello closes the negotiation: the client's advertised caps
    /// (`hello_caps`, from `Request::decode_full`) are intersected with
    /// what this server offers, recorded against the new client id, and
    /// echoed in the Welcome's capability trailer. Every other request
    /// looks the negotiated caps up by client id — requests carrying no
    /// id (replication traffic) fall back to v1, whose replies carry no
    /// diffs anyway.
    ///
    /// Shared by this server's own [`Handler`](iw_proto::Handler) front
    /// end and the cluster wrappers, so every front end accounts
    /// `wire.diff_bytes_{raw,sent}_total` identically.
    pub fn encode_reply(&self, req: &Request, hello_caps: PeerCaps, reply: &Reply) -> Bytes {
        let caps = if matches!(req, Request::Hello { .. }) {
            let caps = hello_caps.intersect(self.wire_caps());
            if let Reply::Welcome { client, .. } = reply {
                if let Some(c) = self.clients.lock().get_mut(client) {
                    c.caps = caps;
                }
            }
            caps
        } else {
            req.client_id()
                .map_or(PeerCaps::NONE, |id| self.client_caps(id))
        };
        self.account_reply_diff(reply, caps);
        reply.encode_caps(caps)
    }

    /// Accounts the diff an outbound reply carries (if any):
    /// `wire.diff_bytes_raw_total` grows by the diff's v1-equivalent
    /// size (`encoded_len_hint`), `wire.diff_bytes_sent_total` by the
    /// bytes actually leaving in the negotiated revision, and the
    /// encode-cache hit/miss counters record whether this encoding was
    /// already materialized (fan-out readers served the same window).
    fn account_reply_diff(&self, reply: &Reply, caps: PeerCaps) {
        let diff = match reply {
            Reply::Granted {
                update: Some(d), ..
            } => d,
            Reply::Update { diff } => diff,
            _ => return,
        };
        let fmt = caps.diff_wire();
        if diff.enc_cached(fmt) {
            self.metrics.enc_cache_hits.inc();
        } else {
            self.metrics.enc_cache_misses.inc();
        }
        // Populates the armed encode cache, so the reply encoding below
        // (and every later reader of the same window) reuses the bytes.
        let sent = diff.encode_as(fmt).len();
        self.metrics
            .diff_bytes_raw
            .add(diff.encoded_len_hint() as u64);
        self.metrics.diff_bytes_sent.add(sent as u64);
    }
}

impl iw_proto::Handler for Server {
    fn handle(&self, request: Bytes) -> Bytes {
        // The guard spans decode and encode too: for bulk requests the
        // wire memcpys are a real share of the worker's time, and the
        // busy counter must reflect it.
        let _guard = self.begin_request();
        match Request::decode_full(request) {
            Ok((req, hello_caps)) => {
                let reply = self.dispatch(&req);
                self.encode_reply(&req, hello_caps, &reply)
            }
            Err(e) => Reply::Error {
                message: format!("bad request: {e}"),
            }
            .encode(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_types::desc::TypeDesc;
    use iw_wire::diff::{NewBlock, SegmentDiff};

    fn seed_diff(from: u64) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 0,
                name: None,
                type_serial: 0,
                count: 4,
                data: Bytes::from(vec![0u8; 16]),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn hello_assigns_distinct_ids() {
        let s = Server::new();
        let a = s.hello("x86 client");
        let b = s.hello("sparc client");
        assert_ne!(a, b);
        assert_eq!(s.client_count(), 2);
    }

    #[test]
    fn open_creates_once() {
        let s = Server::new();
        assert_eq!(s.open("h/s"), 0);
        assert_eq!(s.open("h/s"), 0);
        assert!(s.segment_version("h/s").is_some());
    }

    #[test]
    fn write_cycle_advances_version() {
        let s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Acquire {
            client: c,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(
            r,
            Reply::Granted {
                version: 0,
                update: None,
                ..
            }
        ));
        let r = s.handle_request(&Request::Release {
            client: c,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        assert_eq!(r, Reply::Released { version: 1 });
    }

    #[test]
    fn second_writer_sees_busy_then_grant() {
        let s = Server::new();
        let a = s.hello("a");
        let b = s.hello("b");
        s.open("h/s");
        let acq = |client| Request::Acquire {
            client,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        };
        assert!(matches!(s.handle_request(&acq(a)), Reply::Granted { .. }));
        assert_eq!(s.handle_request(&acq(b)), Reply::Busy);
        s.handle_request(&Request::Release {
            client: a,
            segment: "h/s".into(),
            diff: None,
        });
        assert!(matches!(s.handle_request(&acq(b)), Reply::Granted { .. }));
    }

    #[test]
    fn release_with_diff_requires_writer() {
        let s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Release {
            client: c,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn reader_gets_update_only_when_stale() {
        let s = Server::new();
        let w = s.hello("w");
        let rd = s.hello("r");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: w,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.handle_request(&Request::Release {
            client: w,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        // Stale reader: full transfer.
        let r = s.handle_request(&Request::Acquire {
            client: rd,
            segment: "h/s".into(),
            mode: LockMode::Read,
            have_version: 0,
            coherence: Coherence::Full,
        });
        let Reply::Granted {
            version: 1,
            update: Some(d),
            ..
        } = r
        else {
            panic!("want update, got {r:?}");
        };
        assert_eq!(d.new_blocks.len(), 1);
        s.handle_request(&Request::Release {
            client: rd,
            segment: "h/s".into(),
            diff: None,
        });
        // Fresh reader: no update.
        let r = s.handle_request(&Request::Acquire {
            client: rd,
            segment: "h/s".into(),
            mode: LockMode::Read,
            have_version: 1,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { update: None, .. }));
    }

    #[test]
    fn poll_path() {
        let s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Poll {
            client: c,
            segment: "h/s".into(),
            have_version: 0,
            coherence: Coherence::Full,
            floor: 0,
        });
        assert_eq!(r, Reply::UpToDate);
    }

    #[test]
    fn unknown_segment_errors() {
        let s = Server::new();
        let c = s.hello("c");
        for req in [
            Request::Acquire {
                client: c,
                segment: "nope".into(),
                mode: LockMode::Read,
                have_version: 0,
                coherence: Coherence::Full,
            },
            Request::Poll {
                client: c,
                segment: "nope".into(),
                have_version: 0,
                coherence: Coherence::Full,
                floor: 0,
            },
            Request::Release {
                client: c,
                segment: "nope".into(),
                diff: None,
            },
        ] {
            assert!(matches!(s.handle_request(&req), Reply::Error { .. }));
        }
    }

    #[test]
    fn disconnect_releases_locks() {
        let s = Server::new();
        let a = s.hello("a");
        let b = s.hello("b");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: a,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.disconnect(a);
        let r = s.handle_request(&Request::Acquire {
            client: b,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { .. }));
    }

    #[test]
    fn goodbye_retires_client_and_frees_locks() {
        let s = Server::new();
        let a = s.hello("a");
        let b = s.hello("b");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: a,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        // Goodbye over the wire path retires `a`, releasing its lock.
        let r = s.handle_request(&Request::Goodbye { client: a });
        assert!(matches!(r, Reply::Released { .. }));
        let r = s.handle_request(&Request::Acquire {
            client: b,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { .. }));
        // Goodbye for an id the server never saw is a harmless no-op.
        let r = s.handle_request(&Request::Goodbye { client: 0xdead });
        assert!(matches!(r, Reply::Released { .. }));
    }

    #[test]
    fn disconnect_drops_diff_counters() {
        let s = Server::new();
        let w = s.hello("w");
        let rd = s.hello("r");
        s.open("h/s");
        // Writer publishes v1; reader polls under Diff coherence, which
        // creates its per-segment counter.
        s.handle_request(&Request::Acquire {
            client: w,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.handle_request(&Request::Release {
            client: w,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        s.handle_request(&Request::Poll {
            client: rd,
            segment: "h/s".into(),
            have_version: 0,
            coherence: Coherence::Diff(100),
            floor: 0,
        });
        assert_eq!(
            s.with_segment("h/s", |seg| seg.diff_counter(rd)).unwrap(),
            Some(0)
        );
        s.disconnect(rd);
        assert_eq!(
            s.with_segment("h/s", |seg| seg.diff_counter(rd)).unwrap(),
            None,
            "disconnect must drop the counter"
        );
        assert_eq!(
            s.with_segment("h/s", ServerSegment::diff_counter_count)
                .unwrap(),
            0
        );
    }

    #[test]
    fn stats_request_returns_live_snapshot() {
        let s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: c,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        let r = s.handle_request(&Request::Stats { client: c });
        let Reply::Stats { snapshot } = r else {
            panic!("want Stats, got {r:?}")
        };
        // hello/open went through the direct methods, not handle_request,
        // so only the Acquire and Stats requests are counted.
        assert_eq!(snapshot.counter("server.req.hello_total"), Some(0));
        assert_eq!(snapshot.counter("server.req.acquire_total"), Some(1));
        assert_eq!(snapshot.counter("server.lock.granted_total"), Some(1));
        assert_eq!(snapshot.gauge("server.locks_held"), Some(1));
        assert_eq!(snapshot.gauge("server.clients"), Some(1));
        assert_eq!(snapshot.counter("server.segment.h/s.version"), Some(0));
        // The Stats request itself was counted before the snapshot.
        assert_eq!(snapshot.counter("server.req.stats_total"), Some(1));
        // The Stats request is the only one in flight right now.
        assert_eq!(snapshot.gauge("server.concurrent_requests"), Some(1));
        assert!(snapshot.counter("server.concurrent_requests_peak").unwrap() >= 1);
    }

    #[test]
    fn replicate_applies_in_order_and_is_idempotent() {
        let s = Server::new();
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 0,
            diff: seed_diff(0),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 1 });
        // Re-shipping the same diff acks without re-applying.
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 0,
            diff: seed_diff(0),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 1 });
        assert_eq!(s.segment_version("h/s"), Some(1));
        // A gap (diff from v5 when we hold v1) is an error, prompting a
        // full sync from the primary.
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 5,
            diff: seed_diff(5),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn sync_full_installs_bit_identical_segment() {
        // Build a primary-side segment two versions deep.
        let primary = Server::new();
        primary.open("h/s");
        let image = primary
            .with_segment_mut("h/s", |seg| {
                seg.apply_diff(&seed_diff(0)).unwrap();
                let diff2 = SegmentDiff {
                    from_version: 1,
                    to_version: 2,
                    freed: vec![0],
                    ..Default::default()
                };
                seg.apply_diff(&diff2).unwrap();
                checkpoint::encode_segment(seg).unwrap()
            })
            .unwrap();

        let backup = Server::new();
        let r = s_sync(&backup, "h/s", image.clone());
        assert_eq!(r, Reply::Replicated { acked_version: 2 });
        assert_eq!(backup.segment_version("h/s"), Some(2));
        let reencoded = backup
            .with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
            .unwrap();
        assert_eq!(
            reencoded, image,
            "synced backup re-encodes to the identical image"
        );
        // After the sync, the version chain continues normally.
        let r = backup.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 2,
            diff: seed_diff(2),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 3 });

        // Wrong-name and corrupt images are rejected.
        assert!(matches!(
            s_sync(&backup, "h/other", image.clone()),
            Reply::Error { .. }
        ));
        assert!(matches!(
            s_sync(&backup, "h/s", Bytes::from_static(b"junk")),
            Reply::Error { .. }
        ));
    }

    fn s_sync(s: &Server, segment: &str, image: Bytes) -> Reply {
        s.handle_request(&Request::SyncFull {
            segment: segment.into(),
            image,
        })
    }

    #[test]
    fn bare_server_refuses_attach_backup() {
        let s = Server::new();
        let r = s.handle_request(&Request::AttachBackup {
            addr: "127.0.0.1:1".into(),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn failover_hello_is_counted() {
        let s = Server::new();
        s.hello("x86 client");
        s.hello("x86 client (failover)");
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("cluster.failovers_total"), Some(1));
    }

    #[test]
    fn handler_rejects_garbage_bytes() {
        use iw_proto::Handler;
        let s = Server::new();
        let reply = s.handle(Bytes::from_static(&[0xFF, 0x01]));
        assert!(matches!(Reply::decode(reply).unwrap(), Reply::Error { .. }));
    }

    #[test]
    fn commit_hook_fires_per_committed_diff_in_version_order() {
        let s = Server::new();
        let seen: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        s.set_commit_hook(Arc::new(move |segment, diff| {
            sink.lock().push((segment.to_string(), diff.to_version));
        }));
        let c = s.hello("c");
        s.open("h/s");
        for v in 0..3 {
            s.handle_request(&Request::Acquire {
                client: c,
                segment: "h/s".into(),
                mode: LockMode::Write,
                have_version: v,
                coherence: Coherence::Full,
            });
            let diff = if v == 0 {
                seed_diff(0)
            } else {
                SegmentDiff {
                    from_version: v,
                    to_version: v + 1,
                    freed: vec![],
                    ..Default::default()
                }
            };
            s.handle_request(&Request::Release {
                client: c,
                segment: "h/s".into(),
                diff: Some(diff),
            });
        }
        assert_eq!(
            *seen.lock(),
            vec![
                ("h/s".to_string(), 1),
                ("h/s".to_string(), 2),
                ("h/s".to_string(), 3)
            ]
        );
        // Failed releases never fire the hook.
        let before = seen.lock().len();
        let r = s.handle_request(&Request::Release {
            client: c,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)), // stale base; also no writer lock
        });
        assert!(matches!(r, Reply::Error { .. }));
        assert_eq!(seen.lock().len(), before);
    }
}
