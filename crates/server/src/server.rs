//! The InterWeave server: segment table, client registry, and protocol
//! front-end.
//!
//! "An InterWeave server can manage an arbitrary number of segments, and
//! maintains an up-to-date copy of each of them. It also controls access
//! to these segments." (§3.2)
//!
//! A [`Server`] implements [`iw_proto::Handler`], so it can sit behind the
//! loopback transport (in-process experiments) or [`iw_proto::TcpServer`]
//! (real sockets) unchanged.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::Coherence;
use iw_telemetry::{Registry, Snapshot};
use iw_wire::diff::SegmentDiff;

use crate::checkpoint;
use crate::error::ServerError;
use crate::locks::LockTable;
use crate::metrics::ServerMetrics;
use crate::segment::ServerSegment;

/// Per-client bookkeeping.
#[derive(Debug, Clone)]
struct ClientInfo {
    /// Free-form description from the Hello (architecture etc.).
    #[allow(dead_code)]
    info: String,
}

/// An InterWeave server instance.
#[derive(Debug, Default)]
pub struct Server {
    segments: HashMap<String, ServerSegment>,
    locks: LockTable,
    clients: HashMap<u64, ClientInfo>,
    next_client: u64,
    /// When set, segments are checkpointed to this directory every
    /// `checkpoint_interval` versions ("as partial protection against
    /// server failure, InterWeave periodically checkpoints segments and
    /// their metadata to persistent storage", §2.2).
    checkpoint_dir: Option<PathBuf>,
    checkpoint_interval: u64,
    metrics: ServerMetrics,
}

impl Server {
    /// Creates a server with no segments.
    pub fn new() -> Self {
        Server::default()
    }

    /// Enables periodic checkpointing: every `interval` versions of a
    /// segment, its state is written under `dir`.
    pub fn with_checkpointing(dir: PathBuf, interval: u64) -> Self {
        Server {
            checkpoint_dir: Some(dir),
            checkpoint_interval: interval.max(1),
            ..Server::default()
        }
    }

    /// Restores every segment checkpoint found under `dir` and enables
    /// checkpointing there.
    ///
    /// # Errors
    ///
    /// I/O and corruption errors from checkpoint files.
    pub fn recover(dir: PathBuf, interval: u64) -> Result<Self, ServerError> {
        let mut server = Server::with_checkpointing(dir.clone(), interval);
        for seg in checkpoint::restore_dir(&dir)? {
            server.segments.insert(seg.name.clone(), seg);
        }
        Ok(server)
    }

    /// Registers a client and returns its id.
    ///
    /// A client re-registering after failing over from another replica
    /// marks its info string with `"failover"`, which is how the
    /// `cluster.failovers_total` counter on the surviving replica counts
    /// failover events without a dedicated message type.
    pub fn hello(&mut self, info: &str) -> u64 {
        if info.contains("failover") {
            self.metrics.failovers.inc();
        }
        self.next_client += 1;
        self.clients.insert(
            self.next_client,
            ClientInfo {
                info: info.to_string(),
            },
        );
        self.next_client
    }

    /// Opens (or creates) a segment, returning its current version.
    pub fn open(&mut self, segment: &str) -> u64 {
        self.segments
            .entry(segment.to_string())
            .or_insert_with(|| ServerSegment::new(segment))
            .version()
    }

    /// Direct access to a segment's state (benchmarks and tests).
    pub fn segment(&self, name: &str) -> Option<&ServerSegment> {
        self.segments.get(name)
    }

    /// Names of every segment this server holds (the cluster primary
    /// walks these to full-sync a newly attached backup).
    pub fn segment_names(&self) -> Vec<String> {
        self.segments.keys().cloned().collect()
    }

    /// Mutable access to a segment's state (benchmarks and tests).
    pub fn segment_mut(&mut self, name: &str) -> Option<&mut ServerSegment> {
        self.segments.get_mut(name)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Drops a client, releasing all its locks and forgetting its
    /// per-segment Diff-coherence counters (so a reused id cannot inherit
    /// stale accumulated-change counts, and the counters do not grow
    /// without bound as clients come and go).
    pub fn disconnect(&mut self, client: u64) {
        self.clients.remove(&client);
        let before = self.locks.held_count();
        self.locks.release_all(client);
        self.metrics
            .lock_released
            .add((before - self.locks.held_count()) as u64);
        for seg in self.segments.values_mut() {
            seg.drop_client(client);
        }
    }

    /// The server's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        self.metrics.registry()
    }

    /// Point-in-time copy of every server metric: the registry's
    /// counters/histograms, instantaneous gauges refreshed first, plus
    /// synthetic per-segment entries (`server.segment.<name>.*`) and
    /// aggregates of the per-segment ablation counters.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.locks_held.set(self.locks.held_count() as i64);
        self.metrics.clients.set(self.clients.len() as i64);
        let mut snap = self.metrics.registry().snapshot();
        let mut diff_cache_hits = 0u64;
        let mut diff_cache_misses = 0u64;
        let mut chain_compositions = 0u64;
        let mut subblocks_scanned = 0u64;
        let mut pred_hits = 0u64;
        for (name, seg) in &self.segments {
            diff_cache_hits += seg.diff_cache_hits;
            diff_cache_misses += seg.diff_cache_misses;
            chain_compositions += seg.chain_compositions;
            subblocks_scanned += seg.subblocks_scanned;
            pred_hits += seg.pred_hits;
            snap.counters
                .push((format!("server.segment.{name}.version"), seg.version()));
            snap.gauges.push((
                format!("server.segment.{name}.blocks"),
                seg.block_count() as i64,
            ));
            snap.gauges.push((
                format!("server.segment.{name}.readers"),
                self.locks.reader_count(name) as i64,
            ));
            snap.gauges.push((
                format!("server.segment.{name}.diff_clients"),
                seg.diff_counter_count() as i64,
            ));
        }
        snap.counters
            .push(("server.diff_cache.hits_total".into(), diff_cache_hits));
        snap.counters
            .push(("server.diff_cache.misses_total".into(), diff_cache_misses));
        snap.counters.push((
            "server.diff_cache.chain_compositions_total".into(),
            chain_compositions,
        ));
        snap.counters
            .push(("server.subblocks_scanned_total".into(), subblocks_scanned));
        snap.counters
            .push(("server.pred_hits_total".into(), pred_hits));
        snap.sort();
        snap
    }

    fn acquire(
        &mut self,
        client: u64,
        segment: &str,
        mode: LockMode,
        have_version: u64,
        coherence: Coherence,
    ) -> Reply {
        let Some(seg) = self.segments.get_mut(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        if !self.locks.acquire(segment, client, mode) {
            self.metrics.lock_busy.inc();
            return Reply::Busy;
        }
        self.metrics.lock_granted.inc();
        // Writers must start from the current version, so they always get
        // a Full-coherence update; readers follow their model.
        let effective = match mode {
            LockMode::Write => Coherence::Full,
            LockMode::Read => coherence,
        };
        let update = if seg.needs_update(client, have_version, effective) {
            match seg.collect_update(client, have_version) {
                Ok(d) => Some(d),
                Err(e) => {
                    self.locks.release(segment, client);
                    return Reply::Error {
                        message: e.to_string(),
                    };
                }
            }
        } else {
            None
        };
        Reply::Granted {
            version: seg.version(),
            update,
            next_serial: seg.next_serial(),
            next_type_serial: seg.next_type_serial(),
        }
    }

    fn release(
        &mut self,
        client: u64,
        segment: &str,
        diff: Option<&iw_wire::diff::SegmentDiff>,
    ) -> Reply {
        let Some(seg) = self.segments.get_mut(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        if let Some(diff) = diff {
            if !self.locks.is_writer(segment, client) {
                return Reply::Error {
                    message: "release with diff requires the writer lock".into(),
                };
            }
            match seg.apply_diff(diff) {
                Ok(_) => {}
                Err(e) => {
                    return Reply::Error {
                        message: e.to_string(),
                    }
                }
            }
            self.maybe_checkpoint(segment);
        }
        let seg_version = self
            .segments
            .get(segment)
            .map(ServerSegment::version)
            .unwrap_or(0);
        if self.locks.release(segment, client) {
            self.metrics.lock_released.inc();
        }
        Reply::Released {
            version: seg_version,
        }
    }

    fn commit(
        &mut self,
        client: u64,
        entries: &[(String, Option<iw_wire::diff::SegmentDiff>)],
    ) -> Reply {
        // Validate everything first: locks held, versions current,
        // segments exist. Nothing is applied unless all entries pass.
        for (segment, diff) in entries {
            let Some(seg) = self.segments.get(segment) else {
                return Reply::Error {
                    message: format!("no such segment `{segment}`"),
                };
            };
            if !self.locks.is_writer(segment, client) {
                return Reply::Error {
                    message: format!("commit requires the writer lock on `{segment}`"),
                };
            }
            if let Some(d) = diff {
                if d.from_version != seg.version() {
                    return Reply::Error {
                        message: format!(
                            "commit base version {} stale for `{segment}` (current {})",
                            d.from_version,
                            seg.version()
                        ),
                    };
                }
            }
        }
        let mut versions = Vec::with_capacity(entries.len());
        for (segment, diff) in entries {
            let seg = self.segments.get_mut(segment).expect("validated");
            if let Some(d) = diff {
                match seg.apply_diff(d) {
                    Ok(v) => versions.push(v),
                    Err(e) => {
                        // Structural failure after validation indicates a
                        // client bug; report it (earlier entries stand, as
                        // documented for the prototype).
                        return Reply::Error {
                            message: e.to_string(),
                        };
                    }
                }
            } else {
                versions.push(seg.version());
            }
        }
        for (segment, diff) in entries {
            if diff.is_some() {
                self.maybe_checkpoint(segment);
            }
            if self.locks.release(segment, client) {
                self.metrics.lock_released.inc();
            }
        }
        Reply::Committed { versions }
    }

    fn poll(
        &mut self,
        client: u64,
        segment: &str,
        have_version: u64,
        coherence: Coherence,
    ) -> Reply {
        let Some(seg) = self.segments.get_mut(segment) else {
            return Reply::Error {
                message: format!("no such segment `{segment}`"),
            };
        };
        if !seg.needs_update(client, have_version, coherence) {
            return Reply::UpToDate;
        }
        match seg.collect_update(client, have_version) {
            Ok(diff) => Reply::Update { diff },
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        }
    }

    /// Applies one replicated diff (backup role). Idempotent: a diff the
    /// segment already has (retransmitted after a primary restart or a
    /// duplicated ship) is acked without being re-applied.
    fn replicate(&mut self, segment: &str, from_version: u64, diff: &SegmentDiff) -> Reply {
        let seg = self
            .segments
            .entry(segment.to_string())
            .or_insert_with(|| ServerSegment::new(segment));
        if diff.to_version <= seg.version() {
            return Reply::Replicated {
                acked_version: seg.version(),
            };
        }
        if from_version != seg.version() || diff.from_version != seg.version() {
            // The primary must fall back to a full catch-up image.
            return Reply::Error {
                message: format!(
                    "replication gap on `{segment}`: have {}, diff is {}..{}",
                    seg.version(),
                    diff.from_version,
                    diff.to_version
                ),
            };
        }
        match seg.apply_diff(diff) {
            Ok(v) => {
                self.metrics.repl_diffs_applied.inc();
                self.maybe_checkpoint(segment);
                Reply::Replicated { acked_version: v }
            }
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        }
    }

    /// Replaces a segment with a full catch-up image (backup role). The
    /// image is a checkpoint encoding, so the installed segment is
    /// bit-identical to the primary's — version, serials, subblock
    /// versions and all.
    fn sync_full(&mut self, segment: &str, image: &Bytes) -> Reply {
        let seg = match checkpoint::decode_segment(image.clone()) {
            Ok(seg) => seg,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad sync image for `{segment}`: {e}"),
                }
            }
        };
        if seg.name != segment {
            return Reply::Error {
                message: format!("sync image is for `{}`, not `{segment}`", seg.name),
            };
        }
        let v = seg.version();
        self.metrics.repl_syncs_applied.inc();
        self.metrics.repl_catchup_bytes.add(image.len() as u64);
        self.segments.insert(segment.to_string(), seg);
        self.maybe_checkpoint(segment);
        Reply::Replicated { acked_version: v }
    }

    fn maybe_checkpoint(&mut self, segment: &str) {
        let Some(dir) = &self.checkpoint_dir else {
            return;
        };
        let dir = dir.clone();
        let interval = self.checkpoint_interval;
        if let Some(seg) = self.segments.get_mut(segment) {
            if seg.version() % interval == 0 {
                // Checkpointing is best-effort; failures must not take the
                // release path down.
                let started = Instant::now();
                if checkpoint::write(&dir, seg).is_ok() {
                    self.metrics.checkpoints.inc();
                }
                self.metrics
                    .checkpoint_us
                    .record_duration(started.elapsed());
            }
        }
    }

    /// Handles one decoded request (the protocol entry point).
    pub fn handle_request(&mut self, req: &Request) -> Reply {
        self.metrics.requests.inc();
        self.metrics.req_kind[req.kind_index()].inc();
        let reply = match req {
            Request::Hello { info } => Reply::Welcome {
                client: self.hello(info),
            },
            Request::Open { client: _, segment } => Reply::Opened {
                version: self.open(segment),
            },
            Request::Acquire {
                client,
                segment,
                mode,
                have_version,
                coherence,
            } => self.acquire(*client, segment, *mode, *have_version, *coherence),
            Request::Release {
                client,
                segment,
                diff,
            } => self.release(*client, segment, diff.as_ref()),
            Request::Commit { client, entries } => self.commit(*client, entries),
            Request::Poll {
                client,
                segment,
                have_version,
                coherence,
            } => self.poll(*client, segment, *have_version, *coherence),
            Request::Stats { client: _ } => Reply::Stats {
                snapshot: self.metrics_snapshot(),
            },
            Request::Replicate {
                segment,
                from_version,
                diff,
            } => self.replicate(segment, *from_version, diff),
            Request::SyncFull { segment, image } => self.sync_full(segment, image),
            // Only a cluster primary (iw-cluster's `Primary` wrapper)
            // accepts backups; a bare server refusing keeps a
            // misconfigured `--backup-of` loud instead of silent.
            Request::AttachBackup { .. } => Reply::Error {
                message: "not a cluster primary".into(),
            },
        };
        if matches!(reply, Reply::Error { .. }) {
            self.metrics.errors.inc();
        }
        reply
    }
}

impl iw_proto::Handler for Server {
    fn handle(&mut self, request: Bytes) -> Bytes {
        match Request::decode(request) {
            Ok(req) => self.handle_request(&req).encode(),
            Err(e) => Reply::Error {
                message: format!("bad request: {e}"),
            }
            .encode(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_types::desc::TypeDesc;
    use iw_wire::diff::{NewBlock, SegmentDiff};

    fn seed_diff(from: u64) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 0,
                name: None,
                type_serial: 0,
                count: 4,
                data: Bytes::from(vec![0u8; 16]),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn hello_assigns_distinct_ids() {
        let mut s = Server::new();
        let a = s.hello("x86 client");
        let b = s.hello("sparc client");
        assert_ne!(a, b);
        assert_eq!(s.client_count(), 2);
    }

    #[test]
    fn open_creates_once() {
        let mut s = Server::new();
        assert_eq!(s.open("h/s"), 0);
        assert_eq!(s.open("h/s"), 0);
        assert!(s.segment("h/s").is_some());
    }

    #[test]
    fn write_cycle_advances_version() {
        let mut s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Acquire {
            client: c,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(
            r,
            Reply::Granted {
                version: 0,
                update: None,
                ..
            }
        ));
        let r = s.handle_request(&Request::Release {
            client: c,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        assert_eq!(r, Reply::Released { version: 1 });
    }

    #[test]
    fn second_writer_sees_busy_then_grant() {
        let mut s = Server::new();
        let a = s.hello("a");
        let b = s.hello("b");
        s.open("h/s");
        let acq = |client| Request::Acquire {
            client,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        };
        assert!(matches!(s.handle_request(&acq(a)), Reply::Granted { .. }));
        assert_eq!(s.handle_request(&acq(b)), Reply::Busy);
        s.handle_request(&Request::Release {
            client: a,
            segment: "h/s".into(),
            diff: None,
        });
        assert!(matches!(s.handle_request(&acq(b)), Reply::Granted { .. }));
    }

    #[test]
    fn release_with_diff_requires_writer() {
        let mut s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Release {
            client: c,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn reader_gets_update_only_when_stale() {
        let mut s = Server::new();
        let w = s.hello("w");
        let rd = s.hello("r");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: w,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.handle_request(&Request::Release {
            client: w,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        // Stale reader: full transfer.
        let r = s.handle_request(&Request::Acquire {
            client: rd,
            segment: "h/s".into(),
            mode: LockMode::Read,
            have_version: 0,
            coherence: Coherence::Full,
        });
        let Reply::Granted {
            version: 1,
            update: Some(d),
            ..
        } = r
        else {
            panic!("want update, got {r:?}");
        };
        assert_eq!(d.new_blocks.len(), 1);
        s.handle_request(&Request::Release {
            client: rd,
            segment: "h/s".into(),
            diff: None,
        });
        // Fresh reader: no update.
        let r = s.handle_request(&Request::Acquire {
            client: rd,
            segment: "h/s".into(),
            mode: LockMode::Read,
            have_version: 1,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { update: None, .. }));
    }

    #[test]
    fn poll_path() {
        let mut s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        let r = s.handle_request(&Request::Poll {
            client: c,
            segment: "h/s".into(),
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert_eq!(r, Reply::UpToDate);
    }

    #[test]
    fn unknown_segment_errors() {
        let mut s = Server::new();
        let c = s.hello("c");
        for req in [
            Request::Acquire {
                client: c,
                segment: "nope".into(),
                mode: LockMode::Read,
                have_version: 0,
                coherence: Coherence::Full,
            },
            Request::Poll {
                client: c,
                segment: "nope".into(),
                have_version: 0,
                coherence: Coherence::Full,
            },
            Request::Release {
                client: c,
                segment: "nope".into(),
                diff: None,
            },
        ] {
            assert!(matches!(s.handle_request(&req), Reply::Error { .. }));
        }
    }

    #[test]
    fn disconnect_releases_locks() {
        let mut s = Server::new();
        let a = s.hello("a");
        let b = s.hello("b");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: a,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.disconnect(a);
        let r = s.handle_request(&Request::Acquire {
            client: b,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { .. }));
    }

    #[test]
    fn disconnect_drops_diff_counters() {
        let mut s = Server::new();
        let w = s.hello("w");
        let rd = s.hello("r");
        s.open("h/s");
        // Writer publishes v1; reader polls under Diff coherence, which
        // creates its per-segment counter.
        s.handle_request(&Request::Acquire {
            client: w,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        s.handle_request(&Request::Release {
            client: w,
            segment: "h/s".into(),
            diff: Some(seed_diff(0)),
        });
        s.handle_request(&Request::Poll {
            client: rd,
            segment: "h/s".into(),
            have_version: 0,
            coherence: Coherence::Diff(100),
        });
        let seg = s.segment("h/s").unwrap();
        assert_eq!(seg.diff_counter(rd), Some(0));
        s.disconnect(rd);
        let seg = s.segment("h/s").unwrap();
        assert_eq!(
            seg.diff_counter(rd),
            None,
            "disconnect must drop the counter"
        );
        assert_eq!(seg.diff_counter_count(), 0);
    }

    #[test]
    fn stats_request_returns_live_snapshot() {
        let mut s = Server::new();
        let c = s.hello("c");
        s.open("h/s");
        s.handle_request(&Request::Acquire {
            client: c,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        let r = s.handle_request(&Request::Stats { client: c });
        let Reply::Stats { snapshot } = r else {
            panic!("want Stats, got {r:?}")
        };
        // hello/open went through the direct methods, not handle_request,
        // so only the Acquire and Stats requests are counted.
        assert_eq!(snapshot.counter("server.req.hello_total"), Some(0));
        assert_eq!(snapshot.counter("server.req.acquire_total"), Some(1));
        assert_eq!(snapshot.counter("server.lock.granted_total"), Some(1));
        assert_eq!(snapshot.gauge("server.locks_held"), Some(1));
        assert_eq!(snapshot.gauge("server.clients"), Some(1));
        assert_eq!(snapshot.counter("server.segment.h/s.version"), Some(0));
        // The Stats request itself was counted before the snapshot.
        assert_eq!(snapshot.counter("server.req.stats_total"), Some(1));
    }

    #[test]
    fn replicate_applies_in_order_and_is_idempotent() {
        let mut s = Server::new();
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 0,
            diff: seed_diff(0),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 1 });
        // Re-shipping the same diff acks without re-applying.
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 0,
            diff: seed_diff(0),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 1 });
        assert_eq!(s.segment("h/s").unwrap().version(), 1);
        // A gap (diff from v5 when we hold v1) is an error, prompting a
        // full sync from the primary.
        let r = s.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 5,
            diff: seed_diff(5),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn sync_full_installs_bit_identical_segment() {
        // Build a primary-side segment two versions deep.
        let mut primary = Server::new();
        primary.open("h/s");
        let seg = primary.segment_mut("h/s").unwrap();
        seg.apply_diff(&seed_diff(0)).unwrap();
        let diff2 = SegmentDiff {
            from_version: 1,
            to_version: 2,
            freed: vec![0],
            ..Default::default()
        };
        seg.apply_diff(&diff2).unwrap();
        let image = checkpoint::encode_segment(seg).unwrap();

        let mut backup = Server::new();
        let r = s_sync(&mut backup, "h/s", image.clone());
        assert_eq!(r, Reply::Replicated { acked_version: 2 });
        let b = backup.segment_mut("h/s").unwrap();
        assert_eq!(b.version(), 2);
        assert_eq!(
            checkpoint::encode_segment(b).unwrap(),
            image,
            "synced backup re-encodes to the identical image"
        );
        // After the sync, the version chain continues normally.
        let r = backup.handle_request(&Request::Replicate {
            segment: "h/s".into(),
            from_version: 2,
            diff: seed_diff(2),
        });
        assert_eq!(r, Reply::Replicated { acked_version: 3 });

        // Wrong-name and corrupt images are rejected.
        assert!(matches!(
            s_sync(&mut backup, "h/other", image.clone()),
            Reply::Error { .. }
        ));
        assert!(matches!(
            s_sync(&mut backup, "h/s", Bytes::from_static(b"junk")),
            Reply::Error { .. }
        ));
    }

    fn s_sync(s: &mut Server, segment: &str, image: Bytes) -> Reply {
        s.handle_request(&Request::SyncFull {
            segment: segment.into(),
            image,
        })
    }

    #[test]
    fn bare_server_refuses_attach_backup() {
        let mut s = Server::new();
        let r = s.handle_request(&Request::AttachBackup {
            addr: "127.0.0.1:1".into(),
        });
        assert!(matches!(r, Reply::Error { .. }));
    }

    #[test]
    fn failover_hello_is_counted() {
        let mut s = Server::new();
        s.hello("x86 client");
        s.hello("x86 client (failover)");
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("cluster.failovers_total"), Some(1));
    }

    #[test]
    fn handler_rejects_garbage_bytes() {
        use iw_proto::Handler;
        let mut s = Server::new();
        let reply = s.handle(Bytes::from_static(&[0xFF, 0x01]));
        assert!(matches!(Reply::decode(reply).unwrap(), Reply::Error { .. }));
    }
}
