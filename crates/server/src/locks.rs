//! The server-side reader/writer lock table.
//!
//! "Synchronization takes the form of reader-writer locks that take a
//! segment handle as parameter. A process must hold a writer lock on a
//! segment in order to allocate, free, or modify blocks." (§2.1)
//!
//! Grants are non-blocking: an incompatible request is answered `false`
//! and the client library retries, so a transport thread is never parked
//! holding server state.

use std::collections::{HashMap, HashSet};

use iw_proto::LockMode;

/// Lock state for one segment.
#[derive(Debug, Default)]
struct LockState {
    readers: HashSet<u64>,
    writer: Option<u64>,
}

/// Reader/writer locks for all segments on a server.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<String, LockState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire `mode` on `segment` for `client`. Returns
    /// whether the lock was granted. Re-acquisition by the current holder
    /// is idempotent.
    pub fn acquire(&mut self, segment: &str, client: u64, mode: LockMode) -> bool {
        let st = self.locks.entry(segment.to_string()).or_default();
        match mode {
            LockMode::Read => {
                if st.writer.is_some() && st.writer != Some(client) {
                    return false;
                }
                st.readers.insert(client);
                true
            }
            LockMode::Write => {
                if let Some(w) = st.writer {
                    return w == client;
                }
                if st.readers.iter().any(|&r| r != client) {
                    return false;
                }
                st.writer = Some(client);
                true
            }
        }
    }

    /// Releases whatever `client` holds on `segment`. Returns `true` when
    /// the client actually held something.
    pub fn release(&mut self, segment: &str, client: u64) -> bool {
        let Some(st) = self.locks.get_mut(segment) else {
            return false;
        };
        let mut held = st.readers.remove(&client);
        if st.writer == Some(client) {
            st.writer = None;
            held = true;
        }
        held
    }

    /// `true` when `client` currently holds the writer lock on `segment`.
    pub fn is_writer(&self, segment: &str, client: u64) -> bool {
        self.locks
            .get(segment)
            .is_some_and(|st| st.writer == Some(client))
    }

    /// Releases everything `client` holds (client disconnect).
    pub fn release_all(&mut self, client: u64) {
        for st in self.locks.values_mut() {
            st.readers.remove(&client);
            if st.writer == Some(client) {
                st.writer = None;
            }
        }
    }

    /// Number of readers currently holding `segment` (diagnostics).
    pub fn reader_count(&self, segment: &str) -> usize {
        self.locks.get(segment).map_or(0, |st| st.readers.len())
    }

    /// The client holding the writer lock on `segment`, if any.
    pub fn writer(&self, segment: &str) -> Option<u64> {
        self.locks.get(segment).and_then(|st| st.writer)
    }

    /// Total locks currently held across all segments (each reader and
    /// each writer counts as one).
    pub fn held_count(&self) -> usize {
        self.locks
            .values()
            .map(|st| st.readers.len() + usize::from(st.writer.is_some()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share() {
        let mut t = LockTable::new();
        assert!(t.acquire("s", 1, LockMode::Read));
        assert!(t.acquire("s", 2, LockMode::Read));
        assert_eq!(t.reader_count("s"), 2);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let mut t = LockTable::new();
        assert!(t.acquire("s", 1, LockMode::Write));
        assert!(!t.acquire("s", 2, LockMode::Read));
        assert!(!t.acquire("s", 2, LockMode::Write));
        assert!(t.is_writer("s", 1));
        assert!(!t.is_writer("s", 2));
    }

    #[test]
    fn readers_block_writer() {
        let mut t = LockTable::new();
        assert!(t.acquire("s", 1, LockMode::Read));
        assert!(!t.acquire("s", 2, LockMode::Write));
        t.release("s", 1);
        assert!(t.acquire("s", 2, LockMode::Write));
    }

    #[test]
    fn reacquire_is_idempotent() {
        let mut t = LockTable::new();
        assert!(t.acquire("s", 1, LockMode::Write));
        assert!(t.acquire("s", 1, LockMode::Write));
        assert!(t.acquire("s", 1, LockMode::Read), "writer may also read");
    }

    #[test]
    fn upgrade_when_sole_reader() {
        let mut t = LockTable::new();
        assert!(t.acquire("s", 1, LockMode::Read));
        assert!(
            t.acquire("s", 1, LockMode::Write),
            "sole reader may upgrade"
        );
        assert!(!t.acquire("s", 2, LockMode::Read));
    }

    #[test]
    fn release_reports_holding() {
        let mut t = LockTable::new();
        assert!(!t.release("s", 1));
        t.acquire("s", 1, LockMode::Write);
        assert!(t.release("s", 1));
        assert!(t.acquire("s", 2, LockMode::Write));
    }

    #[test]
    fn release_all_frees_everything() {
        let mut t = LockTable::new();
        t.acquire("a", 1, LockMode::Write);
        t.acquire("b", 1, LockMode::Read);
        t.release_all(1);
        assert!(t.acquire("a", 2, LockMode::Write));
        assert_eq!(t.reader_count("b"), 0);
    }

    #[test]
    fn locks_are_per_segment() {
        let mut t = LockTable::new();
        assert!(t.acquire("a", 1, LockMode::Write));
        assert!(t.acquire("b", 2, LockMode::Write));
    }
}
