//! Cross-version wire interop and encode-once/serve-many fan-out.
//!
//! The capability negotiation must make the v2 diff revision invisible
//! to old peers: a pre-v2 client (advertising nothing) against a
//! current server, and a current client against a pre-v2 server
//! (offering nothing), must both run the full write/read protocol on
//! plain v1 bytes — no flag day. When both sides are current, updates
//! ride the compact revision and the server's per-window encode cache
//! serves repeated readers the same bytes without re-encoding.

use std::sync::Arc;

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, PeerCaps, Transport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

const PRIMS: u32 = 256;
const SEG: &str = "h/interop";

/// The version-1 diff: one int block, serial 0, all zeros.
fn seed_diff() -> SegmentDiff {
    SegmentDiff {
        from_version: 0,
        to_version: 1,
        new_types: vec![(0, TypeDesc::int32())],
        new_blocks: vec![NewBlock {
            serial: 0,
            name: None,
            type_serial: 0,
            count: PRIMS,
            data: Bytes::from(vec![0u8; PRIMS as usize * 4]),
        }],
        ..Default::default()
    }
}

/// A diff advancing `from` → `from + 1` writing `vals` at prim `start`.
fn write_diff(from: u64, start: u64, vals: &[i32]) -> SegmentDiff {
    let mut data = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        data.extend_from_slice(&v.to_be_bytes());
    }
    SegmentDiff {
        from_version: from,
        to_version: from + 1,
        block_diffs: vec![BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start,
                count: vals.len() as u64,
                data: Bytes::from(data),
            }],
        }],
        ..Default::default()
    }
}

fn hello(t: &mut Loopback) -> u64 {
    match t
        .request(&Request::Hello {
            info: "interop-test".into(),
        })
        .expect("hello")
    {
        Reply::Welcome { client, .. } => client,
        other => panic!("unexpected hello reply: {other:?}"),
    }
}

/// Acquire-write / release-with-diff against version `from`.
fn commit(t: &mut Loopback, client: u64, diff: SegmentDiff) -> u64 {
    t.request(&Request::Open {
        client,
        segment: SEG.into(),
    })
    .expect("open");
    match t
        .request(&Request::Acquire {
            client,
            segment: SEG.into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        })
        .expect("acquire")
    {
        Reply::Granted { .. } => {}
        other => panic!("unexpected acquire reply: {other:?}"),
    }
    match t
        .request(&Request::Release {
            client,
            segment: SEG.into(),
            diff: Some(diff),
        })
        .expect("release")
    {
        Reply::Released { version } => version,
        other => panic!("unexpected release reply: {other:?}"),
    }
}

fn poll_update(t: &mut Loopback, client: u64, have_version: u64) -> SegmentDiff {
    match t
        .request(&Request::Poll {
            client,
            segment: SEG.into(),
            have_version,
            coherence: Coherence::Full,
            floor: 0,
        })
        .expect("poll")
    {
        Reply::Update { diff } => diff,
        other => panic!("unexpected poll reply: {other:?}"),
    }
}

/// Seeds the segment and commits one write, returning the server.
fn seeded_server() -> Arc<Server> {
    let server = Arc::new(Server::new());
    let handler: Arc<dyn Handler> = server.clone();
    let mut t = Loopback::new(handler);
    let w = hello(&mut t);
    assert_eq!(commit(&mut t, w, seed_diff()), 1);
    let vals: Vec<i32> = (0..64).collect();
    assert_eq!(commit(&mut t, w, write_diff(1, 16, &vals)), 2);
    server
}

fn counter(server: &Server, name: &str) -> u64 {
    server.metrics_snapshot().counter(name).unwrap_or(0)
}

/// A pre-v2 client (advertises nothing) against a current server: the
/// whole protocol runs on v1 bytes, and the bytes accounted as sent
/// equal the raw v1 baseline — no compaction, but no breakage either.
#[test]
fn old_client_against_new_server_stays_on_v1() {
    let server = seeded_server();
    // Deltas from here on: the seeding writer (a modern peer) may have
    // already been served a compact piggybacked update.
    let raw0 = counter(&server, "wire.diff_bytes_raw_total");
    let sent0 = counter(&server, "wire.diff_bytes_sent_total");
    let mut t = Loopback::new(server.clone() as Arc<dyn Handler>);
    t.set_local_caps(PeerCaps::NONE);
    let c = hello(&mut t);
    assert_eq!(t.negotiated_caps(), PeerCaps::NONE);

    let upd = poll_update(&mut t, c, 1);
    assert_eq!((upd.from_version, upd.to_version), (1, 2));
    // The old client can write, too.
    let vals: Vec<i32> = (100..120).collect();
    assert_eq!(commit(&mut t, c, write_diff(2, 0, &vals)), 3);

    assert_eq!(
        counter(&server, "wire.diff_bytes_sent_total") - sent0,
        counter(&server, "wire.diff_bytes_raw_total") - raw0,
        "v1 traffic must be accounted at exactly the raw baseline"
    );
}

/// A current client against a pre-v2 server (offers nothing): the
/// Welcome carries an empty capability set and the client falls back to
/// v1 for everything it sends.
#[test]
fn new_client_against_old_server_stays_on_v1() {
    let server = seeded_server();
    server.set_wire_caps(PeerCaps::NONE);
    let mut t = Loopback::new(server.clone() as Arc<dyn Handler>);
    let c = hello(&mut t);
    assert_eq!(t.negotiated_caps(), PeerCaps::NONE);

    let upd = poll_update(&mut t, c, 1);
    assert_eq!((upd.from_version, upd.to_version), (1, 2));
    let vals: Vec<i32> = (200..232).collect();
    assert_eq!(commit(&mut t, c, write_diff(2, 32, &vals)), 3);
}

/// Two current peers negotiate the v2 revision, and a v1 reader of the
/// same window sees a structurally identical diff — the revision is
/// pure encoding, invisible at the protocol level.
#[test]
fn v2_and_v1_readers_decode_identical_updates() {
    let server = seeded_server();

    let mut t2 = Loopback::new(server.clone() as Arc<dyn Handler>);
    let c2 = hello(&mut t2);
    assert_eq!(t2.negotiated_caps(), PeerCaps::ALL);
    let upd_v2 = poll_update(&mut t2, c2, 1);

    let mut t1 = Loopback::new(server.clone() as Arc<dyn Handler>);
    t1.set_local_caps(PeerCaps::NONE);
    let c1 = hello(&mut t1);
    let upd_v1 = poll_update(&mut t1, c1, 1);

    assert_eq!(upd_v2, upd_v1);
    // The v2 leg must be accounted below the raw (v1) baseline.
    let raw = counter(&server, "wire.diff_bytes_raw_total");
    let sent = counter(&server, "wire.diff_bytes_sent_total");
    assert!(sent < raw, "v2 sent {sent} must beat raw {raw}");
}

/// 200 readers of the same update window: the first poll pays the
/// encode, everyone after is served the cached bytes — ≥95% of reply
/// diffs must come straight from the encode cache.
#[test]
fn fanout_readers_hit_encoded_cache() {
    let server = seeded_server();
    const READERS: usize = 200;
    for _ in 0..READERS {
        let mut t = Loopback::new(server.clone() as Arc<dyn Handler>);
        let c = hello(&mut t);
        let upd = poll_update(&mut t, c, 1);
        assert_eq!((upd.from_version, upd.to_version), (1, 2));
    }
    let hits = counter(&server, "server.enc_cache.hits_total");
    let misses = counter(&server, "server.enc_cache.misses_total");
    println!("fan-out encode cache: {hits} hits / {misses} misses");
    // The seeding writer's piggybacked acquire update may add one more
    // accounted diff on top of the 200 reader polls.
    assert!(hits + misses >= READERS as u64);
    assert!(
        hits * 100 >= (hits + misses) * 95,
        "want ≥95% encode-cache serves, got {hits} hits / {misses} misses"
    );
}
