//! Concurrency suite for the sharded server: many threads hammer
//! lock/modify/release cycles through loopback connections, and the
//! final state must equal a serial oracle — with every test wrapped in
//! a deadlock watchdog.
//!
//! These tests exercise exactly the property the sharded segment table
//! claims: requests against disjoint segments are independent (same
//! outcome as any serial order), same-segment writers serialize through
//! the client lock table, and two requests really can be inside
//! `handle_request` at once.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use iw_faults::{FaultInjector, FaultLog, FaultPlan};
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

const PRIMS: u32 = 64;

/// Runs `f` on a fresh thread and panics if it has not finished within
/// `secs` — a deadlock in the server's lock hierarchy hangs the worker,
/// and this turns the hang into a loud failure instead of a stuck CI
/// job.
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (done_tx, done_rx) = mpsc::channel();
    let worker = thread::Builder::new()
        .name("concurrency-test".into())
        .spawn(move || {
            f();
            let _ = done_tx.send(());
        })
        .expect("spawn test worker");
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("test worker panicked"),
        Err(_) => panic!("test did not finish within {secs}s — deadlock?"),
    }
}

/// The version-1 diff: one 64-int block, serial 0, all zeros.
fn seed_diff() -> SegmentDiff {
    SegmentDiff {
        from_version: 0,
        to_version: 1,
        new_types: vec![(0, TypeDesc::int32())],
        new_blocks: vec![NewBlock {
            serial: 0,
            name: None,
            type_serial: 0,
            count: PRIMS,
            data: Bytes::from(vec![0u8; PRIMS as usize * 4]),
        }],
        ..Default::default()
    }
}

/// A diff advancing `from` → `from + 1` that writes `vals` starting at
/// prim `start` of block 0.
fn write_diff(from: u64, start: u64, vals: &[i32]) -> SegmentDiff {
    let mut data = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        data.extend_from_slice(&v.to_be_bytes());
    }
    SegmentDiff {
        from_version: from,
        to_version: from + 1,
        block_diffs: vec![BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start,
                count: vals.len() as u64,
                data: Bytes::from(data),
            }],
        }],
        ..Default::default()
    }
}

/// The deterministic payload for version `to` of segment index `s`.
fn payload(s: usize, to: u64) -> Vec<i32> {
    (0..8)
        .map(|k| (s as i32) * 1_000_000 + (to as i32) * 100 + k)
        .collect()
}

/// One full write cycle: acquire Write (retrying Busy), release with a
/// diff built from the granted version. Returns the committed version.
fn write_cycle(t: &mut Loopback, client: u64, segment: &str, s: usize) -> u64 {
    let granted = loop {
        let r = t
            .request(&Request::Acquire {
                client,
                segment: segment.into(),
                mode: LockMode::Write,
                have_version: 0,
                coherence: Coherence::Full,
            })
            .expect("acquire");
        match r {
            Reply::Granted { version, .. } => break version,
            Reply::Busy => thread::yield_now(),
            other => panic!("unexpected acquire reply: {other:?}"),
        }
    };
    let diff = if granted == 0 {
        seed_diff()
    } else {
        write_diff(granted, 0, &payload(s, granted + 1))
    };
    let r = t
        .request(&Request::Release {
            client,
            segment: segment.into(),
            diff: Some(diff),
        })
        .expect("release");
    match r {
        Reply::Released { version } => version,
        other => panic!("unexpected release reply: {other:?}"),
    }
}

/// N threads × M disjoint segments: every thread owns its segments
/// outright, so all requests should proceed with zero cross-thread
/// blocking, and the final state must be byte-identical to a serial
/// replay of the same per-segment histories.
#[test]
fn disjoint_segments_match_serial_oracle() {
    with_watchdog(60, || {
        const THREADS: usize = 4;
        const SEGS_PER_THREAD: usize = 2;
        const OPS: u64 = 25;

        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();
        let mut workers = Vec::new();
        for t_idx in 0..THREADS {
            let handler = handler.clone();
            workers.push(thread::spawn(move || {
                let mut t = Loopback::new(handler);
                let Reply::Welcome { client, .. } = t
                    .request(&Request::Hello {
                        info: format!("worker-{t_idx}"),
                    })
                    .expect("hello")
                else {
                    panic!("no welcome")
                };
                for j in 0..SEGS_PER_THREAD {
                    let seg = format!("c/t{t_idx}s{j}");
                    t.request(&Request::Open {
                        client,
                        segment: seg.clone(),
                    })
                    .expect("open");
                }
                for op in 0..OPS {
                    for j in 0..SEGS_PER_THREAD {
                        let s = t_idx * SEGS_PER_THREAD + j;
                        let seg = format!("c/t{t_idx}s{j}");
                        let v = write_cycle(&mut t, client, &seg, s);
                        assert_eq!(v, op + 1, "single-owner segment advances one per cycle");
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker");
        }

        // Serial oracle: the same per-segment histories on a fresh
        // server, one request at a time on this thread.
        let oracle = Server::new();
        let client = oracle.hello("oracle");
        for t_idx in 0..THREADS {
            for j in 0..SEGS_PER_THREAD {
                let s = t_idx * SEGS_PER_THREAD + j;
                let seg = format!("c/t{t_idx}s{j}");
                oracle.handle_request(&Request::Open {
                    client,
                    segment: seg.clone(),
                });
                // Drive the oracle directly, same diffs in the same
                // per-segment order.
                for op in 0..OPS {
                    let diff = if op == 0 {
                        seed_diff()
                    } else {
                        write_diff(op, 0, &payload(s, op + 1))
                    };
                    let r = oracle.handle_request(&Request::Acquire {
                        client,
                        segment: seg.clone(),
                        mode: LockMode::Write,
                        have_version: 0,
                        coherence: Coherence::Full,
                    });
                    assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
                    let r = oracle.handle_request(&Request::Release {
                        client,
                        segment: seg.clone(),
                        diff: Some(diff),
                    });
                    assert_eq!(r, Reply::Released { version: op + 1 });
                }
            }
        }

        // Compare: per-segment version and the full checkpoint encoding
        // (name, version, serials, types, blocks, subblock versions).
        for t_idx in 0..THREADS {
            for j in 0..SEGS_PER_THREAD {
                let seg = format!("c/t{t_idx}s{j}");
                assert_eq!(
                    server.segment_version(&seg),
                    Some(OPS),
                    "{seg} final version"
                );
                let concurrent = server
                    .with_segment_mut(&seg, |s| checkpoint::encode_segment(s).expect("encode"))
                    .expect("segment");
                let serial = oracle
                    .with_segment_mut(&seg, |s| checkpoint::encode_segment(s).expect("encode"))
                    .expect("segment");
                assert_eq!(
                    concurrent, serial,
                    "{seg}: concurrent state must be byte-identical to the serial oracle"
                );
            }
        }
    });
}

/// All threads fight over ONE segment: the client lock table must
/// serialize the writers (Busy → retry), every committed version is
/// distinct, and the final version equals the total number of writes.
#[test]
fn same_segment_writers_serialize_without_deadlock() {
    with_watchdog(60, || {
        const THREADS: usize = 4;
        const OPS: u64 = 25;

        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();
        let mut workers = Vec::new();
        for t_idx in 0..THREADS {
            let handler = handler.clone();
            workers.push(thread::spawn(move || {
                let mut t = Loopback::new(handler);
                let Reply::Welcome { client, .. } = t
                    .request(&Request::Hello {
                        info: format!("fighter-{t_idx}"),
                    })
                    .expect("hello")
                else {
                    panic!("no welcome")
                };
                t.request(&Request::Open {
                    client,
                    segment: "c/shared".into(),
                })
                .expect("open");
                let mut versions = Vec::with_capacity(OPS as usize);
                for _ in 0..OPS {
                    versions.push(write_cycle(&mut t, client, "c/shared", 0));
                }
                versions
            }));
        }
        let mut all_versions: Vec<u64> = Vec::new();
        for w in workers {
            let vs = w.join().expect("worker");
            assert!(
                vs.windows(2).all(|w| w[0] < w[1]),
                "one client's committed versions must be monotonic: {vs:?}"
            );
            all_versions.extend(vs);
        }
        all_versions.sort_unstable();
        let expect: Vec<u64> = (1..=(THREADS as u64 * OPS)).collect();
        assert_eq!(
            all_versions, expect,
            "every version 1..=N committed exactly once"
        );
        assert_eq!(
            server.segment_version("c/shared"),
            Some(THREADS as u64 * OPS)
        );
        // The lock table refused at least one acquire along the way (4
        // writers × 25 cycles over one lock cannot all be first in line),
        // and nothing is left held.
        let snap = server.metrics_snapshot();
        assert_eq!(snap.gauge("server.locks_held"), Some(0));
        assert_eq!(
            snap.counter("server.lock.granted_total"),
            Some(THREADS as u64 * OPS),
            "one grant per committed write"
        );
    });
}

/// Two requests must be able to be inside `handle_request` at the same
/// time. A commit hook that dwells while holding segment `c/slow`'s
/// write lock keeps one worker in-flight; a second worker polls a
/// *different* segment meanwhile, which the sharded table must admit —
/// observable as `server.concurrent_requests_peak >= 2`. (With the old
/// global handler mutex the peak is pinned at 1 by construction.)
#[test]
fn requests_overlap_across_segments() {
    with_watchdog(60, || {
        let server = Arc::new(Server::new());
        server.set_commit_hook(Arc::new(|_, _| {
            thread::sleep(Duration::from_millis(2));
        }));
        let handler: Arc<dyn Handler> = server.clone();

        // Writer: 50 write cycles on c/slow, each commit dwelling 2 ms
        // inside the handler.
        let writer_handler = handler.clone();
        let writer = thread::spawn(move || {
            let mut t = Loopback::new(writer_handler);
            let Reply::Welcome { client, .. } = t
                .request(&Request::Hello { info: "w".into() })
                .expect("hello")
            else {
                panic!("no welcome")
            };
            t.request(&Request::Open {
                client,
                segment: "c/slow".into(),
            })
            .expect("open");
            for _ in 0..50 {
                write_cycle(&mut t, client, "c/slow", 0);
            }
        });

        // Poller: hammers a different segment until the writer is done.
        let mut t = Loopback::new(handler);
        let Reply::Welcome { client, .. } = t
            .request(&Request::Hello { info: "p".into() })
            .expect("hello")
        else {
            panic!("no welcome")
        };
        t.request(&Request::Open {
            client,
            segment: "c/other".into(),
        })
        .expect("open");
        while !writer.is_finished() {
            let r = t
                .request(&Request::Poll {
                    client,
                    segment: "c/other".into(),
                    have_version: 0,
                    coherence: Coherence::Full,
                    floor: 0,
                })
                .expect("poll");
            assert_eq!(r, Reply::UpToDate);
        }
        writer.join().expect("writer");

        let snap = server.metrics_snapshot();
        let peak = snap
            .counter("server.concurrent_requests_peak")
            .expect("peak metric");
        assert!(
            peak >= 2,
            "two requests never overlapped (peak {peak}) — server is serializing"
        );
        assert_eq!(snap.gauge("server.concurrent_requests"), Some(0));
    });
}

/// Mixed read/write traffic across shared and private segments: a
/// smoke-level schedule shuffle that must never deadlock and must leave
/// coherent versions.
#[test]
fn mixed_readers_and_writers_stay_coherent() {
    with_watchdog(60, || {
        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();

        // Seed one shared segment serially.
        let seeder = server.hello("seed");
        server.handle_request(&Request::Open {
            client: seeder,
            segment: "c/mixed".into(),
        });
        let r = server.handle_request(&Request::Acquire {
            client: seeder,
            segment: "c/mixed".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        });
        assert!(matches!(r, Reply::Granted { .. }));
        server.handle_request(&Request::Release {
            client: seeder,
            segment: "c/mixed".into(),
            diff: Some(seed_diff()),
        });

        let mut workers = Vec::new();
        for t_idx in 0..4usize {
            let handler = handler.clone();
            workers.push(thread::spawn(move || {
                let mut t = Loopback::new(handler);
                let Reply::Welcome { client, .. } = t
                    .request(&Request::Hello {
                        info: format!("m{t_idx}"),
                    })
                    .expect("hello")
                else {
                    panic!("no welcome")
                };
                for req in [
                    Request::Open {
                        client,
                        segment: "c/mixed".into(),
                    },
                    Request::Open {
                        client,
                        segment: format!("c/own{t_idx}"),
                    },
                ] {
                    t.request(&req).expect("open");
                }
                let mut have = 0u64;
                for op in 0..30u64 {
                    if t_idx % 2 == 0 {
                        // Readers: lock, maybe fetch, unlock; versions
                        // they observe must never move backwards.
                        let r = loop {
                            match t
                                .request(&Request::Acquire {
                                    client,
                                    segment: "c/mixed".into(),
                                    mode: LockMode::Read,
                                    have_version: have,
                                    coherence: Coherence::Full,
                                })
                                .expect("rl")
                            {
                                Reply::Busy => thread::yield_now(),
                                other => break other,
                            }
                        };
                        let Reply::Granted { version, .. } = r else {
                            panic!("{r:?}")
                        };
                        assert!(version >= have, "version went backwards");
                        have = version;
                        t.request(&Request::Release {
                            client,
                            segment: "c/mixed".into(),
                            diff: None,
                        })
                        .expect("rel");
                    } else {
                        // Writers alternate between the shared segment
                        // and their private one.
                        let seg = if op % 2 == 0 {
                            "c/mixed".to_string()
                        } else {
                            format!("c/own{t_idx}")
                        };
                        write_cycle(&mut t, client, &seg, t_idx);
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker");
        }
        // 2 writers × 15 shared writes on top of the seed version.
        assert_eq!(server.segment_version("c/mixed"), Some(31));
        let snap = server.metrics_snapshot();
        assert_eq!(snap.gauge("server.locks_held"), Some(0));
    });
}

/// Faults a raw-protocol client can retry through without ambiguity:
/// dropped requests (never delivered — the retry is exact), duplicated
/// deliveries (the second Release hits an already-released lock and its
/// error reply is discarded), and delays. DropReply and Truncate are
/// excluded here: at the raw request/reply layer a lost *reply* to an
/// applied Release can't be told apart from a lost request — that
/// recovery contract belongs to the session layer and is exercised in
/// `crates/faults/tests/chaos.rs`.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        drop_per_10k: 400,
        duplicate_per_10k: 400,
        delay_per_10k: 400,
        max_delay_us: 200,
        ..FaultPlan::none()
    }
}

/// Sends `req` until the link delivers it, treating injected channel
/// errors as retriable.
fn insist(t: &mut Loopback, req: &Request) -> Reply {
    loop {
        match t.request(req) {
            Ok(r) => break r,
            Err(_) => continue,
        }
    }
}

/// `write_cycle` hardened against injected channel faults: a dropped
/// Acquire or Release never reached the server, so resending it is
/// exact.
fn chaos_write_cycle(t: &mut Loopback, client: u64, segment: &str, s: usize) -> u64 {
    let granted = loop {
        match insist(
            t,
            &Request::Acquire {
                client,
                segment: segment.into(),
                mode: LockMode::Write,
                have_version: 0,
                coherence: Coherence::Full,
            },
        ) {
            Reply::Granted { version, .. } => break version,
            Reply::Busy => thread::yield_now(),
            other => panic!("unexpected acquire reply: {other:?}"),
        }
    };
    let diff = if granted == 0 {
        seed_diff()
    } else {
        write_diff(granted, 0, &payload(s, granted + 1))
    };
    match insist(
        t,
        &Request::Release {
            client,
            segment: segment.into(),
            diff: Some(diff),
        },
    ) {
        Reply::Released { version } => version,
        other => panic!("unexpected release reply: {other:?}"),
    }
}

/// The disjoint-segment oracle test under a seeded faulty loopback:
/// drops, duplicates and delays on every worker's link must not change
/// the final bytes — each segment still ends byte-identical to the
/// serial oracle, and each single-owner cycle still commits exactly one
/// version.
#[test]
fn disjoint_segments_match_serial_oracle_under_chaos() {
    with_watchdog(60, || {
        const THREADS: usize = 4;
        const SEGS_PER_THREAD: usize = 2;
        const OPS: u64 = 25;
        const SEED: u64 = 42;

        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();
        let log = FaultLog::new();
        let mut workers = Vec::new();
        for t_idx in 0..THREADS {
            let handler = handler.clone();
            let log = log.clone();
            workers.push(thread::spawn(move || {
                let mut t = Loopback::new(handler);
                t.set_fault_layer(Box::new(FaultInjector::new(
                    SEED ^ (t_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    chaos_plan(),
                    log,
                )));
                let Reply::Welcome { client, .. } = insist(
                    &mut t,
                    &Request::Hello {
                        info: format!("chaos-{t_idx}"),
                    },
                ) else {
                    panic!("no welcome")
                };
                for j in 0..SEGS_PER_THREAD {
                    let r = insist(
                        &mut t,
                        &Request::Open {
                            client,
                            segment: format!("x/t{t_idx}s{j}"),
                        },
                    );
                    assert!(matches!(r, Reply::Opened { .. }), "{r:?}");
                }
                for op in 0..OPS {
                    for j in 0..SEGS_PER_THREAD {
                        let s = t_idx * SEGS_PER_THREAD + j;
                        let seg = format!("x/t{t_idx}s{j}");
                        let v = chaos_write_cycle(&mut t, client, &seg, s);
                        assert_eq!(v, op + 1, "one commit per cycle, faults or not");
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker");
        }
        assert!(
            !log.is_empty(),
            "the chaos run injected nothing — the oracle check is vacuous"
        );

        // Serial oracle, fault-free by construction.
        let oracle = Server::new();
        let client = oracle.hello("oracle");
        for t_idx in 0..THREADS {
            for j in 0..SEGS_PER_THREAD {
                let s = t_idx * SEGS_PER_THREAD + j;
                let seg = format!("x/t{t_idx}s{j}");
                oracle.handle_request(&Request::Open {
                    client,
                    segment: seg.clone(),
                });
                for op in 0..OPS {
                    let diff = if op == 0 {
                        seed_diff()
                    } else {
                        write_diff(op, 0, &payload(s, op + 1))
                    };
                    let r = oracle.handle_request(&Request::Acquire {
                        client,
                        segment: seg.clone(),
                        mode: LockMode::Write,
                        have_version: 0,
                        coherence: Coherence::Full,
                    });
                    assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
                    let r = oracle.handle_request(&Request::Release {
                        client,
                        segment: seg.clone(),
                        diff: Some(diff),
                    });
                    assert_eq!(r, Reply::Released { version: op + 1 });
                }
            }
        }

        for t_idx in 0..THREADS {
            for j in 0..SEGS_PER_THREAD {
                let seg = format!("x/t{t_idx}s{j}");
                assert_eq!(server.segment_version(&seg), Some(OPS));
                let concurrent = server
                    .with_segment_mut(&seg, |s| checkpoint::encode_segment(s).expect("encode"))
                    .expect("segment");
                let serial = oracle
                    .with_segment_mut(&seg, |s| checkpoint::encode_segment(s).expect("encode"))
                    .expect("segment");
                assert_eq!(
                    concurrent, serial,
                    "{seg}: chaos-degraded run must end byte-identical to the serial oracle"
                );
            }
        }
        assert_eq!(
            server.metrics_snapshot().gauge("server.locks_held"),
            Some(0)
        );
    });
}
