//! Property test: any interleaving of two concurrent writers over two
//! segments is equivalent to *some* serial order — the lock table
//! admits one writer at a time per segment, every committed version is
//! consumed exactly once, and region-disjoint writes never clobber each
//! other.
//!
//! Each client owns an 8-prim region of every segment (client `c` owns
//! prims `c*8 .. c*8+8`), so whatever order the schedule interleaves
//! the lock grants in, the final content of a region must be the last
//! value its owner wrote to that segment — exactly what a serial
//! execution would produce.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};
use proptest::prelude::*;

const PRIMS: u32 = 64;
const SEGS: [&str; 2] = ["p/ia", "p/ib"];

fn seed_diff() -> SegmentDiff {
    SegmentDiff {
        from_version: 0,
        to_version: 1,
        new_types: vec![(0, TypeDesc::int32())],
        new_blocks: vec![NewBlock {
            serial: 0,
            name: None,
            type_serial: 0,
            count: PRIMS,
            data: Bytes::from(vec![0u8; PRIMS as usize * 4]),
        }],
        ..Default::default()
    }
}

/// Replays int32 runs over a model array; later writes win.
fn replay(model: &mut [i32], diff: &SegmentDiff) {
    for bd in &diff.block_diffs {
        for r in &bd.runs {
            for k in 0..r.count {
                let idx = (r.start + k) as usize;
                let b = &r.data[(k * 4) as usize..(k * 4 + 4) as usize];
                model[idx] = i32::from_be_bytes(b.try_into().expect("4B"));
            }
        }
    }
}

/// What one client did to one segment: how many releases it committed
/// and the last value it wrote there.
#[derive(Debug, Default, Clone, Copy)]
struct PerSeg {
    writes: u64,
    last: Option<i32>,
}

/// Runs one client's schedule on its own loopback connection. Each op
/// `(seg_pick, val)` write-locks the chosen segment (retrying Busy) and
/// writes `val` across the client's own 8-prim region. Returns the
/// per-segment tallies; panics (→ test failure) on any protocol error
/// or non-monotonic committed version.
fn run_client(handler: Arc<dyn Handler>, c: usize, ops: Vec<(bool, i32)>) -> [PerSeg; 2] {
    let mut t = Loopback::new(handler);
    let Reply::Welcome { client, .. } = t
        .request(&Request::Hello {
            info: format!("prop-{c}"),
        })
        .expect("hello")
    else {
        panic!("no welcome")
    };
    for seg in SEGS {
        t.request(&Request::Open {
            client,
            segment: seg.into(),
        })
        .expect("open");
    }
    let mut out = [PerSeg::default(); 2];
    let mut seen = [0u64; 2]; // last committed version per segment
    for (pick, val) in ops {
        let s = usize::from(pick);
        let seg = SEGS[s];
        let granted = loop {
            match t
                .request(&Request::Acquire {
                    client,
                    segment: seg.into(),
                    mode: LockMode::Write,
                    have_version: 0,
                    coherence: Coherence::Full,
                })
                .expect("acquire")
            {
                Reply::Granted { version, .. } => break version,
                Reply::Busy => thread::yield_now(),
                other => panic!("unexpected acquire reply: {other:?}"),
            }
        };
        let mut data = Vec::with_capacity(8 * 4);
        for _ in 0..8 {
            data.extend_from_slice(&val.to_be_bytes());
        }
        let diff = SegmentDiff {
            from_version: granted,
            to_version: granted + 1,
            block_diffs: vec![BlockDiff {
                serial: 0,
                runs: vec![DiffRun {
                    start: c as u64 * 8,
                    count: 8,
                    data: Bytes::from(data),
                }],
            }],
            ..Default::default()
        };
        match t
            .request(&Request::Release {
                client,
                segment: seg.into(),
                diff: Some(diff),
            })
            .expect("release")
        {
            Reply::Released { version } => {
                assert!(
                    version > seen[s],
                    "committed versions must be monotonic per client"
                );
                seen[s] = version;
            }
            other => panic!("unexpected release reply: {other:?}"),
        }
        out[s].writes += 1;
        out[s].last = Some(val);
    }
    out
}

/// Per-client, per-segment tallies from one case.
type Tallies = [[PerSeg; 2]; 2];
/// Final `(version, content)` of each segment.
type Finals = [(u64, Vec<i32>); 2];

/// Executes one whole case (server setup + two concurrent clients)
/// under a deadlock watchdog and returns both clients' tallies plus the
/// final per-segment state.
fn run_case(ops0: Vec<(bool, i32)>, ops1: Vec<(bool, i32)>) -> (Tallies, Finals) {
    let (done_tx, done_rx) = mpsc::channel();
    thread::spawn(move || {
        let server = Arc::new(Server::new());
        // Seed both segments serially to version 1.
        let seeder = server.hello("seeder");
        for seg in SEGS {
            server.handle_request(&Request::Open {
                client: seeder,
                segment: seg.into(),
            });
            let r = server.handle_request(&Request::Acquire {
                client: seeder,
                segment: seg.into(),
                mode: LockMode::Write,
                have_version: 0,
                coherence: Coherence::Full,
            });
            assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
            let r = server.handle_request(&Request::Release {
                client: seeder,
                segment: seg.into(),
                diff: Some(seed_diff()),
            });
            assert_eq!(r, Reply::Released { version: 1 });
        }

        let h0: Arc<dyn Handler> = server.clone();
        let h1: Arc<dyn Handler> = server.clone();
        let w0 = thread::spawn(move || run_client(h0, 0, ops0));
        let w1 = thread::spawn(move || run_client(h1, 1, ops1));
        let tallies = [w0.join().expect("client 0"), w1.join().expect("client 1")];

        // Final state: version plus full content rebuilt by replaying
        // the server's own 1→current update onto the seed image.
        let finals: [(u64, Vec<i32>); 2] = SEGS.map(|seg| {
            let version = server.segment_version(seg).expect("segment");
            let mut model = vec![0i32; PRIMS as usize];
            if version > 1 {
                let upd = server
                    .with_segment_mut(seg, |s| s.collect_update(999, 1).expect("update"))
                    .expect("segment");
                assert_eq!(upd.to_version, version);
                replay(&mut model, &upd);
            }
            (version, model)
        });
        let _ = done_tx.send((tallies, finals));
    });
    match done_rx.recv_timeout(Duration::from_secs(30)) {
        Ok(r) => r,
        Err(_) => panic!("interleaving case did not finish within 30s — deadlock?"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_interleavings_equal_some_serial_order(
        ops0 in prop::collection::vec((any::<bool>(), any::<i32>()), 1..10),
        ops1 in prop::collection::vec((any::<bool>(), any::<i32>()), 1..10),
    ) {
        let (tallies, finals) = run_case(ops0.clone(), ops1.clone());

        for (s, (version, model)) in finals.iter().enumerate() {
            // Every successful release advanced the version by exactly
            // one: no committed write is lost or double-applied,
            // whatever the interleaving.
            let writes = tallies[0][s].writes + tallies[1][s].writes;
            prop_assert_eq!(*version, 1 + writes, "segment {}", SEGS[s]);

            // Region-disjoint writes: each client's region holds the
            // last value that client wrote to this segment — the same
            // answer every serial order gives.
            for (c, tally) in tallies.iter().enumerate() {
                let expect = tally[s].last.unwrap_or(0);
                let region = &model[c * 8..c * 8 + 8];
                prop_assert!(
                    region.iter().all(|&v| v == expect),
                    "segment {} client {} region: {:?}, want {}",
                    SEGS[s], c, region, expect
                );
            }
            // Unowned prims stay untouched.
            prop_assert!(model[16..].iter().all(|&v| v == 0));
        }
    }
}
