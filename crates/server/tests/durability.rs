//! End-to-end durability: a server built with `--data-dir` survives
//! being dropped (or killed — the process-level variant lives in
//! iw-faults) and recovers byte-identical state from checkpoint + WAL.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::Coherence;
use iw_server::checkpoint;
use iw_server::{DurabilityMode, DurableOptions, Server};
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("iw-srv-dur-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(mode: DurabilityMode) -> DurableOptions {
    DurableOptions {
        mode,
        fsync: false, // unit tests stay fast; real fsync is chaos-tested
        ..DurableOptions::default()
    }
}

/// Version `from` → `from+1`: creates block `from` and rewrites block 0's
/// first word, so every version both grows and mutates state.
fn chain_diff(from: u64) -> SegmentDiff {
    let mut d = SegmentDiff {
        from_version: from,
        to_version: from + 1,
        new_types: if from == 0 {
            vec![(0, TypeDesc::int32())]
        } else {
            Vec::new()
        },
        new_blocks: vec![NewBlock {
            serial: from as u32,
            name: None,
            type_serial: 0,
            count: 4,
            data: Bytes::from((from as u32).to_be_bytes().repeat(4)),
        }],
        ..Default::default()
    };
    if from > 0 {
        d.block_diffs.push(BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start: 0,
                count: 1,
                data: Bytes::from((from as u32 * 1000).to_be_bytes().to_vec()),
            }],
        });
    }
    d
}

/// One full write cycle (acquire-write, release-with-diff) as a client.
fn write_cycle(s: &Server, client: u64, segment: &str, from: u64) {
    let r = s.handle_request(&Request::Acquire {
        client,
        segment: segment.into(),
        mode: LockMode::Write,
        have_version: from,
        coherence: Coherence::Full,
    });
    assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
    let r = s.handle_request(&Request::Release {
        client,
        segment: segment.into(),
        diff: Some(chain_diff(from)),
    });
    assert_eq!(r, Reply::Released { version: from + 1 });
}

/// The fault-free oracle: a fresh in-memory server fed the same diffs.
fn oracle(segment: &str, versions: u64) -> Server {
    let s = Server::new();
    let c = s.hello("oracle");
    s.open(segment);
    for v in 0..versions {
        write_cycle(&s, c, segment, v);
    }
    s
}

fn image_of(s: &Server, segment: &str) -> Bytes {
    s.with_segment_mut(segment, |seg| checkpoint::encode_segment(seg).unwrap())
        .unwrap()
}

#[test]
fn wal_replay_recovers_byte_identical_state() {
    let dir = temp_dir("wal");
    {
        let (s, rec) = Server::with_durability(dir.clone(), opts(DurabilityMode::Wal)).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        let c = s.hello("w");
        for seg in ["a/seg", "b/seg"] {
            s.open(seg);
            for v in 0..6 {
                write_cycle(&s, c, seg, v);
            }
        }
    }
    let (recovered, rec) = Server::with_durability(dir, opts(DurabilityMode::Wal)).unwrap();
    assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
    assert_eq!(rec.replayed_records, 12);
    for seg in ["a/seg", "b/seg"] {
        assert_eq!(recovered.segment_version(seg), Some(6));
        assert_eq!(
            image_of(&recovered, seg),
            image_of(&oracle(seg, 6), seg),
            "recovered `{seg}` differs from the fault-free oracle"
        );
    }
}

#[test]
fn checkpoint_plus_tail_recovers_and_bounds_replay() {
    let dir = temp_dir("ck-tail");
    let o = DurableOptions {
        checkpoint_interval: 4,
        ..opts(DurabilityMode::WalCheckpoint)
    };
    {
        let (s, _) = Server::with_durability(dir.clone(), o.clone()).unwrap();
        let c = s.hello("w");
        s.open("h/s");
        for v in 0..10 {
            write_cycle(&s, c, "h/s", v);
        }
    }
    let (recovered, rec) = Server::with_durability(dir, o).unwrap();
    assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
    assert_eq!(recovered.segment_version("h/s"), Some(10));
    // The checkpoint at v8 supersedes records 1..=8: only 8→9 and 9→10
    // replay, even though 10 were logged.
    assert_eq!(rec.replayed_records, 2);
    assert_eq!(
        image_of(&recovered, "h/s"),
        image_of(&oracle("h/s", 10), "h/s")
    );
}

#[test]
fn compaction_bounds_log_and_preserves_state() {
    let dir = temp_dir("compact");
    let o = DurableOptions {
        checkpoint_interval: 1000, // periodic images off: compaction does the work
        compact_threshold_bytes: 2_000,
        ..opts(DurabilityMode::WalCheckpoint)
    };
    {
        let (s, _) = Server::with_durability(dir.clone(), o.clone()).unwrap();
        let c = s.hello("w");
        s.open("h/s");
        for v in 0..60 {
            write_cycle(&s, c, "h/s", v);
        }
        let snap = s.metrics_snapshot();
        assert!(
            snap.counter("durable.compactions_total").unwrap() >= 1,
            "threshold of 2000 bytes must trigger compaction over 60 releases"
        );
        assert!(snap.counter("durable.wal_appends_total").unwrap() >= 60);
    }
    let (recovered, rec) = Server::with_durability(dir, o).unwrap();
    assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
    assert_eq!(recovered.segment_version("h/s"), Some(60));
    // Post-compaction recovery reads only the newest image + tail, not
    // the 60-record history.
    assert!(
        rec.scanned_records < 60,
        "replay scanned {} records; compaction should have folded the chain",
        rec.scanned_records
    );
    assert_eq!(
        image_of(&recovered, "h/s"),
        image_of(&oracle("h/s", 60), "h/s")
    );
}

#[test]
fn mode_off_persists_nothing() {
    let dir = temp_dir("off");
    {
        let (s, rec) = Server::with_durability(dir.clone(), opts(DurabilityMode::Off)).unwrap();
        assert!(rec.segments.is_empty());
        assert_eq!(s.durability_mode(), DurabilityMode::Off);
        let c = s.hello("w");
        s.open("h/s");
        write_cycle(&s, c, "h/s", 0);
    }
    assert!(!dir.exists(), "Off mode must not create a data dir");
    let (recovered, rec) =
        Server::with_durability(dir, opts(DurabilityMode::WalCheckpoint)).unwrap();
    assert!(rec.segments.is_empty());
    assert_eq!(recovered.segment_version("h/s"), None);
}

#[test]
fn multi_segment_commit_is_durable() {
    let dir = temp_dir("txn");
    {
        let (s, _) =
            Server::with_durability(dir.clone(), opts(DurabilityMode::WalCheckpoint)).unwrap();
        let c = s.hello("w");
        for seg in ["t/a", "t/b"] {
            s.open(seg);
            let r = s.handle_request(&Request::Acquire {
                client: c,
                segment: seg.into(),
                mode: LockMode::Write,
                have_version: 0,
                coherence: Coherence::Full,
            });
            assert!(matches!(r, Reply::Granted { .. }));
        }
        let r = s.handle_request(&Request::Commit {
            client: c,
            entries: vec![
                ("t/a".into(), Some(chain_diff(0))),
                ("t/b".into(), Some(chain_diff(0))),
            ],
        });
        assert_eq!(
            r,
            Reply::Committed {
                versions: vec![1, 1]
            }
        );
    }
    let (recovered, rec) =
        Server::with_durability(dir, opts(DurabilityMode::WalCheckpoint)).unwrap();
    assert_eq!(rec.replayed_records, 2);
    assert_eq!(recovered.segment_version("t/a"), Some(1));
    assert_eq!(recovered.segment_version("t/b"), Some(1));
}
