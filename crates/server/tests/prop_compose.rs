//! Property test: serving a multi-version update via diff-chain
//! composition is always semantically identical to applying the
//! per-version diffs in order (and to the server's own subblock rebuild,
//! on the touched set).

use bytes::Bytes;
use iw_server::ServerSegment;
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};
use proptest::prelude::*;

const PRIMS: u64 = 96;

/// Replays int runs over a model array; later writes win.
fn replay(model: &mut [i32], diff: &SegmentDiff) {
    for bd in &diff.block_diffs {
        for r in &bd.runs {
            for k in 0..r.count {
                let idx = (r.start + k) as usize;
                let b = &r.data[(k * 4) as usize..(k * 4 + 4) as usize];
                model[idx] = i32::from_be_bytes(b.try_into().expect("4B"));
            }
        }
    }
}

fn run(start: u64, vals: &[i32]) -> DiffRun {
    let mut data = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        data.extend_from_slice(&v.to_be_bytes());
    }
    DiffRun {
        start,
        count: vals.len() as u64,
        data: Bytes::from(data),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composed_chain_equals_sequential_replay(
        steps in prop::collection::vec(
            prop::collection::vec((0u64..PRIMS, 1u64..12, any::<i32>()), 1..5),
            1..8,
        ),
        have_pick in any::<u8>(),
    ) {
        let mut seg = ServerSegment::new("p/compose");
        let init = SegmentDiff {
            from_version: 0,
            to_version: 1,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 0,
                name: None,
                type_serial: 0,
                count: PRIMS as u32,
                data: Bytes::from(vec![0u8; (PRIMS * 4) as usize]),
            }],
            ..Default::default()
        };
        seg.apply_diff(&init).unwrap();

        // Apply every step; keep them for the reference replay.
        let mut applied: Vec<SegmentDiff> = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            let runs: Vec<DiffRun> = step
                .iter()
                .map(|&(start, count, v)| {
                    let count = count.min(PRIMS - start);
                    let vals: Vec<i32> = (0..count).map(|k| v.wrapping_add(k as i32)).collect();
                    run(start, &vals)
                })
                .collect();
            let d = SegmentDiff {
                from_version: 1 + i as u64,
                to_version: 2 + i as u64,
                block_diffs: vec![BlockDiff { serial: 0, runs }],
                ..Default::default()
            };
            seg.apply_diff(&d).unwrap();
            applied.push(d);
        }

        // A client at some version in [1, current) asks for an update.
        let have = 1 + u64::from(have_pick) % (applied.len() as u64);
        let upd = seg.collect_update(7, have).unwrap();
        prop_assert_eq!(upd.from_version, have);
        prop_assert_eq!(upd.to_version, 1 + applied.len() as u64);

        // Reference: state at `have`, then replay the remaining steps.
        let mut reference = vec![0i32; PRIMS as usize];
        for d in &applied[..(have - 1) as usize] {
            replay(&mut reference, d);
        }
        let mut expect = reference.clone();
        for d in &applied[(have - 1) as usize..] {
            replay(&mut expect, d);
        }

        // Candidate: state at `have`, then the served update.
        let mut got = reference;
        replay(&mut got, &upd);
        prop_assert_eq!(got, expect);
    }
}
