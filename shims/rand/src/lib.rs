//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic SplitMix64-based [`rngs::StdRng`] plus the
//! [`Rng`]/[`SeedableRng`] traits with uniform `gen_range` over half-open
//! ranges — the subset this workspace uses. Not cryptographically secure;
//! statistical quality is fine for test-data generation.

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Sampling interface for random generators.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample(self, range.start, range.end)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for test-sized spans.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&i));
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }
}
