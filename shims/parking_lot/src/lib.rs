//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s non-poisoning API: `lock()`
//! returns a guard directly, and a panic while holding the lock does not
//! poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired, ignoring poison from past panics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn unsized_coercion_to_trait_object() {
        trait Speak {
            fn n(&self) -> u32;
        }
        struct S;
        impl Speak for S {
            fn n(&self) -> u32 {
                42
            }
        }
        let m: Arc<Mutex<dyn Speak>> = Arc::new(Mutex::new(S));
        assert_eq!(m.lock().n(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
