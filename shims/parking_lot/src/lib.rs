//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` with `parking_lot`'s
//! non-poisoning API: `lock()` / `read()` / `write()` return guards
//! directly, and a panic while holding a lock does not poison it for
//! later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired, ignoring poison from past panics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until a shared read guard is acquired, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Blocks until the exclusive write guard is acquired, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn unsized_coercion_to_trait_object() {
        trait Speak {
            fn n(&self) -> u32;
        }
        struct S;
        impl Speak for S {
            fn n(&self) -> u32 {
                42
            }
        }
        let m: Arc<Mutex<dyn Speak>> = Arc::new(Mutex::new(S));
        assert_eq!(m.lock().n(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 2;
        assert_eq!(*l.read(), 7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14, "shared readers coexist");
    }

    #[test]
    fn rwlock_panic_does_not_poison() {
        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
