//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of `bytes` it actually uses: a cheaply
//! cloneable immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits with big-endian
//! accessors. Semantics match the upstream crate for this subset (panics on
//! out-of-range reads, zero-copy `slice`/`split_to` sharing one allocation).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `Bytes::from(Vec<u8>)` (and therefore [`BytesMut::freeze`]) adopts the
/// vector's allocation instead of copying it — the hot translation paths
/// finalize multi-megabyte wire buffers and must not pay a copy (plus the
/// page faults of a second fresh allocation) per diff.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Creates `Bytes` from a static slice (copied once into shared storage).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies `s` into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
            end: s.len(),
        }
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of `self` for the given subrange, sharing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past them.
    ///
    /// # Panics
    ///
    /// Panics when `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(
            n <= self.len(),
            "split_to {n} out of bounds for {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: adopts the vector's allocation (excess capacity and all).
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; finalize with [`BytesMut::freeze`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source; all multi-byte reads are big-endian.
///
/// Every accessor advances the cursor and panics when fewer bytes remain
/// than requested, matching the upstream `bytes::Buf` contract.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian IEEE 754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.start += dst.len();
    }
}

/// Write cursor; all multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE 754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.slice(..);
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5]);
    }

    #[test]
    fn buf_reads_big_endian() {
        let mut b = Bytes::from(vec![0, 0, 1, 2, 0xFF]);
        assert_eq!(b.get_u32(), 0x0102);
        assert_eq!(b.get_u8(), 0xFF);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bufmut_writes_big_endian() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16(0x0102);
        m.put_u8(3);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}
