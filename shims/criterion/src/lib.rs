//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, `black_box` — with a simple
//! warmup-then-sample timing loop reporting median and minimum per benchmark.
//! No statistical analysis, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _c: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_bench(None, &id.into(), n, f);
    }
}

/// A named collection of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into(), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; matches the upstream API).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, n: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(n),
        sample_size: n,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no samples: closure never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    println!("{label:<48} median {median:>12?}   min {min:>12?}   samples {n}");
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_input_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
                calls += 1;
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(calls, 1);
    }
}
