//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the `Strategy`
//! trait (`prop_map`, `prop_recursive`, `boxed`), strategies for ranges,
//! tuples, `Just`, regex-subset `&str` patterns, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, weighted `prop_oneof!`, and the
//! `proptest!` test macro. Cases are generated from a seed derived from the
//! test's module path, so runs are deterministic. Failing inputs are **not**
//! shrunk — the failing assert fires directly.

pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (e.g. a test name).
        pub fn for_test(label: &str) -> Self {
            let mut h = DefaultHasher::new();
            label.hash(&mut h);
            TestRng {
                state: h.finish() | 1,
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf, and `f` wraps an
        /// inner strategy into one more level of nesting, up to `depth`
        /// levels. The `_desired_size`/`_expected_branch` hints are accepted
        /// for API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                cur = Union::new(vec![(1, leaf.clone()), (1, deeper)]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cheaply cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies; backs [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total > 0,
                "prop_oneof! needs at least one arm with nonzero weight"
            );
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights changed during generation")
        }
    }

    /// Types with a natural uniform strategy over a half-open range.
    pub trait RangeValue: Copy {
        /// Uniform sample in `[lo, hi)`.
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeValue for f64 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    impl RangeValue for f32 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            lo + (hi - lo) * rng.unit_f64() as f32
        }
    }

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);
    impl_strategy_tuple!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex_gen::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values across many magnitudes; no NaN/inf so equality
            // round-trips are well-defined.
            let mag = (rng.below(613) as f64) - 306.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * rng.unit_f64() * 10f64.powf(mag / 10.0)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; generates `None` about 1 in 4 times.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option` values wrapping `inner`'s output.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

mod regex_gen {
    //! Generator for the small regex subset the workspace's patterns use:
    //! literals, `\`-escapes, character classes with ranges, groups, and the
    //! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped).

    use super::test_runner::TestRng;

    #[derive(Debug)]
    enum Node {
        Lit(char),
        Class(Vec<char>),
        Group(Vec<Elem>),
    }

    #[derive(Debug)]
    struct Elem {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (elems, rest) = parse_seq(&chars, 0, pattern);
        assert!(rest == chars.len(), "unsupported regex pattern {pattern:?}");
        let mut out = String::new();
        emit_seq(&elems, rng, &mut out);
        out
    }

    fn emit_seq(elems: &[Elem], rng: &mut TestRng, out: &mut String) {
        for e in elems {
            let span = u64::from(e.max - e.min + 1);
            let n = e.min + rng.below(span) as u32;
            for _ in 0..n {
                match &e.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Node::Group(inner) => emit_seq(inner, rng, out),
                }
            }
        }
    }

    fn parse_seq(chars: &[char], mut i: usize, pat: &str) -> (Vec<Elem>, usize) {
        let mut elems = Vec::new();
        while i < chars.len() && chars[i] != ')' {
            let (node, next) = parse_atom(chars, i, pat);
            let (min, max, next) = parse_quant(chars, next, pat);
            elems.push(Elem { node, min, max });
            i = next;
        }
        (elems, i)
    }

    fn parse_atom(chars: &[char], i: usize, pat: &str) -> (Node, usize) {
        match chars[i] {
            '[' => parse_class(chars, i + 1, pat),
            '(' => {
                let (inner, j) = parse_seq(chars, i + 1, pat);
                assert!(
                    j < chars.len() && chars[j] == ')',
                    "unclosed group in {pat:?}"
                );
                (Node::Group(inner), j + 1)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing escape in {pat:?}");
                (Node::Lit(chars[i + 1]), i + 2)
            }
            c => {
                assert!(
                    !matches!(c, '|' | '.' | '^' | '$' | '{' | '}' | '*' | '+' | '?'),
                    "unsupported regex metachar {c:?} in {pat:?}"
                );
                (Node::Lit(c), i + 1)
            }
        }
    }

    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Node, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                assert!(lo <= hi, "inverted class range in {pat:?}");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(lo);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unclosed class in {pat:?}");
        assert!(!set.is_empty(), "empty class in {pat:?}");
        (Node::Class(set), i + 1)
    }

    fn parse_quant(chars: &[char], i: usize, pat: &str) -> (u32, u32, usize) {
        if i >= chars.len() {
            return (1, 1, i);
        }
        match chars[i] {
            '?' => (0, 1, i + 1),
            '*' => (0, 4, i + 1),
            '+' => (1, 4, i + 1),
            '{' => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                let close = close.unwrap_or_else(|| panic!("unclosed quantifier in {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pat:?}")),
                        n.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pat:?}")),
                    ),
                    None => {
                        let n = body
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in {pat:?}"));
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in {pat:?}");
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // A tuple of strategies is itself a strategy.
                let strat = ($($strat,)+);
                for _case in 0..config.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = crate::regex_gen::generate("[a-z]{1,8}(\\.[a-z]{2,3})?/[a-z]{1,8}", &mut rng);
            assert!(s.contains('/'));
            assert!(s.len() >= 3);
            let printable = crate::regex_gen::generate("[ -~]{0,40}", &mut rng);
            assert!(printable.len() <= 40);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_vec_work(v in prop::collection::vec(prop_oneof![2 => 0u32..5, 1 => 10u32..12], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x < 5 || (10..12).contains(&x));
            }
        }

        #[test]
        fn map_and_option_work(o in prop::option::of((1u8..4).prop_map(|x| x * 2)), s in "[a-z]{2}") {
            if let Some(x) = o {
                prop_assert!([2, 4, 6].contains(&x));
            }
            prop_assert_eq!(s.len(), 2);
        }
    }
}
