#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== cluster failover e2e"
cargo test -q -p iw-cli --test cluster

echo "== server concurrency suite (threads unpinned)"
# The suite's whole point is real parallelism: make sure no inherited
# RUST_TEST_THREADS=1 serializes it into meaninglessness.
env -u RUST_TEST_THREADS cargo test -q -p iw-server --test concurrency
env -u RUST_TEST_THREADS cargo test -q -p iw-server --test prop_interleave

echo "== TCP contention stress (release)"
env -u RUST_TEST_THREADS cargo test -q --release -p iw-cli --test contention -- --nocapture | grep "contention result"

echo "CI OK"
