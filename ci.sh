#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== cluster failover e2e"
cargo test -q -p iw-cli --test cluster

echo "== server concurrency suite (threads unpinned)"
# The suite's whole point is real parallelism: make sure no inherited
# RUST_TEST_THREADS=1 serializes it into meaninglessness.
env -u RUST_TEST_THREADS cargo test -q -p iw-server --test concurrency
env -u RUST_TEST_THREADS cargo test -q -p iw-server --test prop_interleave

echo "== TCP contention stress (release)"
env -u RUST_TEST_THREADS cargo test -q --release -p iw-cli --test contention -- --nocapture | grep "contention result"

echo "== chaos soak (release, fixed seeds, 120s cap)"
# Deterministic fault-injection soaks over the CI seed set. Bounded by
# wall clock so a wedged run fails loudly instead of hanging the gate;
# a failing seed is printed for replay with `iwchaos --seed N --trace`.
cargo build --release -q -p iw-cli --bin iwchaos
for seed in 1 7 42; do
  if ! timeout 120 target/release/iwchaos --seed "$seed"; then
    echo "chaos soak FAILED at seed $seed (replay: iwchaos --seed $seed --trace)"
    exit 1
  fi
done

echo "== replica-read soak (release, fixed seeds, 120s cap)"
# One writer vs backup-pinned relaxed readers while the primary→backup
# ship link wears seeded faults: every backup-served read must stay
# within its staleness bound, with zero violations, and the settled
# probe must be replica-served once the faults drain.
for seed in 1 7 42; do
  if ! timeout 120 target/release/iwchaos --replica-reads --seed "$seed"; then
    echo "replica-read soak FAILED at seed $seed (replay: iwchaos --replica-reads --seed $seed --trace)"
    exit 1
  fi
done
env -u RUST_TEST_THREADS timeout 300 cargo test -q --release -p iw-faults

echo "== recovery (durable soak + SIGKILL mid-commit + restart, oracle byte-compare)"
# iwchaos --recover runs two checks per seed: the chaos soak on a
# durable primary whose data dir is reopened and byte-compared against
# the soak-end image, and a real `iwsrv --data-dir` child SIGKILLed
# mid-commit, restarted, and byte-compared against a fault-free oracle.
cargo build --release -q -p iw-cli --bin iwchaos --bin iwsrv
for seed in 1 7 42; do
  if ! timeout 120 target/release/iwchaos --seed "$seed" --recover; then
    echo "recovery FAILED at seed $seed (replay: iwchaos --seed $seed --recover)"
    exit 1
  fi
done

echo "== bench smoke (durable release-path overhead, wal on vs off)"
# Informational: prints µs/release for off / wal / wal+checkpoint so a
# durability regression is visible in the CI log (EXPERIMENTS.md §PR6
# records the reference numbers for this host class).
cargo build --release -q -p iw-bench --bin bench_durable
target/release/bench_durable 2000

echo "== bench smoke (translation hot path + wire bytes vs committed baselines)"
# Fails when any gated total regresses more than 25% against the
# committed baselines: the auto-thread collect+apply total and the
# isomorphic fast-path total (seconds, BENCH_9.json), plus the v2 and
# v2+lz encoded-byte totals across the wire mixes (bytes, BENCH_10.json
# — deterministic, so the gate catches any encoding regression at all).
# Regenerate the baselines with:
#   target/release/bench_trajectory 1.0 --out crates/bench/baselines/BENCH_9.json \
#     --wire-out crates/bench/baselines/BENCH_10.json
cargo build --release -q -p iw-bench --bin bench_trajectory
target/release/bench_trajectory 1.0 --out /tmp/BENCH_9.current.json \
  --wire-out /tmp/BENCH_10.current.json \
  --baseline crates/bench/baselines/BENCH_9.json \
  --wire-baseline crates/bench/baselines/BENCH_10.json --tolerance 25

echo "== many-client scale (event front end, release)"
# A release iwsrv on an ephemeral port, driven by iwload: every session
# is a live TCP connection committing acquire-write-release rounds, and
# the run fails on any protocol error or content divergence. Three
# checks: (1) the connections-vs-throughput curve through the
# readiness-polled front end, topping out at >=2000 concurrent
# sessions (reference numbers: EXPERIMENTS.md "Event-driven front
# end"); (2) the admission contract — beyond --max-conns every
# connection still gets a *typed* answer (Overloaded), never a hang or
# reset; (3) a chaos-seeded smoke: recoverable ingress faults survived
# by reconnect/retry with zero surviving errors.
cargo build --release -q -p iw-cli --bin iwsrv --bin iwload
if [ "$(ulimit -n)" -lt 8192 ]; then ulimit -n 8192 || true; fi
scale_dir=$(mktemp -d)
scale_pid=""
start_iwsrv() {
  rm -f "$scale_dir/port"
  target/release/iwsrv --listen 127.0.0.1:0 --port-file "$scale_dir/port" \
    "$@" 2>"$scale_dir/iwsrv.log" &
  scale_pid=$!
  for _ in $(seq 1 100); do [ -s "$scale_dir/port" ] && break; sleep 0.1; done
  scale_addr=$(cat "$scale_dir/port")
}
stop_iwsrv() {
  [ -n "$scale_pid" ] && kill "$scale_pid" 2>/dev/null || true
  wait "$scale_pid" 2>/dev/null || true
  scale_pid=""
}
trap 'stop_iwsrv' EXIT

start_iwsrv
timeout 300 target/release/iwload --addr "$scale_addr" \
  --curve 256,1024,2000 --rounds 5 --drivers 32
stop_iwsrv

start_iwsrv --max-conns 32
timeout 60 target/release/iwload --addr "$scale_addr" --expect-busy 48
stop_iwsrv

start_iwsrv --chaos 7
timeout 120 target/release/iwload --addr "$scale_addr" \
  --sessions 64 --rounds 5 --drivers 16 --chaos
stop_iwsrv

echo "== read-replica fan-out (3-node group, 200 temporal readers)"
# A primary plus two `--backup-of` replicas, then the iwload fan-out
# harness: one writer streaming versions while 200 temporal reader
# sessions pull the shared segment through the replica pool (discovered
# from the primary's advertised set). Fails on any torn/regressing
# read, any staleness-bound violation, zero replica-served reads, or a
# replica share of network reads below 80%.
backup_pids=""
stop_backups() {
  for p in $backup_pids; do kill "$p" 2>/dev/null || true; done
  for p in $backup_pids; do wait "$p" 2>/dev/null || true; done
  backup_pids=""
}
trap 'stop_backups; stop_iwsrv' EXIT
start_iwsrv
for b in 1 2; do
  rm -f "$scale_dir/bport$b"
  target/release/iwsrv --listen 127.0.0.1:0 --port-file "$scale_dir/bport$b" \
    --backup-of "$scale_addr" 2>"$scale_dir/backup$b.log" &
  backup_pids="$backup_pids $!"
done
for _ in $(seq 1 100); do
  grep -q attached "$scale_dir/backup1.log" 2>/dev/null \
    && grep -q attached "$scale_dir/backup2.log" 2>/dev/null && break
  sleep 0.1
done
timeout 120 target/release/iwload --addr "$scale_addr" \
  --readers 200 --reads 10 --writes 40 --window-ms 1 --min-share 80
stop_backups
stop_iwsrv

echo "CI OK"
