#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== cluster failover e2e"
cargo test -q -p iw-cli --test cluster

echo "CI OK"
