//! Host crate for InterWeave-rs cross-crate integration tests (see the
//! `tests/` directory of this package).
