//! Model-based randomized testing: a fleet of clients on random
//! architectures performs random operation sequences against one server,
//! while a plain in-process `HashMap` model tracks what every primitive
//! should contain. After every write-lock release and every read-lock
//! acquire, the acting client's view must match the model exactly.
//!
//! This is the harness that would catch cross-cutting bugs none of the
//! unit suites see: stale diffs, mis-applied runs, swizzle corruption,
//! allocator reuse bugs, transaction rollback leaks.

use std::collections::HashMap;
use std::sync::Arc;

use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;
use proptest::prelude::*;

/// The reference model: segment → block name → vector of i32 values.
type Model = HashMap<&'static str, HashMap<String, Vec<i32>>>;

const SEGMENTS: [&str; 2] = ["model/a", "model/b"];

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a block of `len` ints named `bN` in segment `seg_pick`.
    Alloc { seg_pick: u8, len: u8 },
    /// Write `value` at `idx` (mod len) of a random existing block.
    Write {
        seg_pick: u8,
        block_pick: u8,
        idx: u8,
        value: i32,
    },
    /// Free a random existing block.
    Free { seg_pick: u8, block_pick: u8 },
    /// Full read-back validation of one segment.
    Validate { seg_pick: u8 },
    /// A transaction that writes then aborts: must be invisible.
    AbortedTx {
        seg_pick: u8,
        block_pick: u8,
        idx: u8,
        value: i32,
    },
    /// Switch the acting client.
    SwitchClient { client_pick: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (any::<u8>(), 1u8..40).prop_map(|(seg_pick, len)| Op::Alloc { seg_pick, len }),
        6 => (any::<u8>(), any::<u8>(), any::<u8>(), any::<i32>())
            .prop_map(|(seg_pick, block_pick, idx, value)| Op::Write {
                seg_pick, block_pick, idx, value
            }),
        1 => (any::<u8>(), any::<u8>())
            .prop_map(|(seg_pick, block_pick)| Op::Free { seg_pick, block_pick }),
        2 => any::<u8>().prop_map(|seg_pick| Op::Validate { seg_pick }),
        2 => (any::<u8>(), any::<u8>(), any::<u8>(), any::<i32>())
            .prop_map(|(seg_pick, block_pick, idx, value)| Op::AbortedTx {
                seg_pick, block_pick, idx, value
            }),
        2 => any::<u8>().prop_map(|client_pick| Op::SwitchClient { client_pick }),
    ]
}

fn validate(s: &mut Session, seg: &'static str, model: &Model) {
    let h = s.open_segment(seg).unwrap();
    s.rl_acquire(&h).unwrap();
    let blocks = &model[seg];
    for (name, vals) in blocks {
        let p = s
            .mip_to_ptr(&format!("{seg}#{name}"))
            .unwrap_or_else(|e| panic!("{seg}#{name} missing: {e}"));
        for (i, want) in vals.iter().enumerate() {
            let cell = s.index(&p, i as u32).unwrap();
            let got = s.read_i32(&cell).unwrap();
            assert_eq!(got, *want, "{seg}#{name}[{i}] on {}", s.arch().name);
        }
    }
    s.rl_release(&h).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clients_always_agree_with_the_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let srv: Arc<dyn Handler> = Arc::new(Server::new());
        let archs = MachineArch::all();
        let mut clients: Vec<Session> = archs
            .iter()
            .map(|a| {
                Session::new(a.clone(), Box::new(Loopback::new(srv.clone()))).unwrap()
            })
            .collect();
        let mut model: Model = SEGMENTS.iter().map(|&s| (s, HashMap::new())).collect();
        let mut next_block = 0u32;
        let mut cur = 0usize;

        for seg in SEGMENTS {
            clients[cur].open_segment(seg).unwrap();
        }

        for op in ops {
            match op {
                Op::Alloc { seg_pick, len } => {
                    let seg = SEGMENTS[seg_pick as usize % SEGMENTS.len()];
                    let name = format!("b{next_block}");
                    next_block += 1;
                    let s = &mut clients[cur];
                    let h = s.open_segment(seg).unwrap();
                    s.wl_acquire(&h).unwrap();
                    s.malloc(&h, &TypeDesc::int32(), u32::from(len), Some(&name))
                        .unwrap();
                    s.wl_release(&h).unwrap();
                    model.get_mut(seg).unwrap().insert(name, vec![0; len as usize]);
                }
                Op::Write { seg_pick, block_pick, idx, value } => {
                    let seg = SEGMENTS[seg_pick as usize % SEGMENTS.len()];
                    let names: Vec<String> = model[seg].keys().cloned().collect();
                    if names.is_empty() { continue; }
                    let name = &names[block_pick as usize % names.len()];
                    let len = model[seg][name].len();
                    let i = idx as usize % len;
                    let s = &mut clients[cur];
                    let h = s.open_segment(seg).unwrap();
                    s.wl_acquire(&h).unwrap();
                    let p = s.mip_to_ptr(&format!("{seg}#{name}")).unwrap();
                    let cell = s.index(&p, i as u32).unwrap();
                    s.write_i32(&cell, value).unwrap();
                    s.wl_release(&h).unwrap();
                    model.get_mut(seg).unwrap().get_mut(name).unwrap()[i] = value;
                }
                Op::Free { seg_pick, block_pick } => {
                    let seg = SEGMENTS[seg_pick as usize % SEGMENTS.len()];
                    let names: Vec<String> = model[seg].keys().cloned().collect();
                    if names.is_empty() { continue; }
                    let name = names[block_pick as usize % names.len()].clone();
                    let s = &mut clients[cur];
                    let h = s.open_segment(seg).unwrap();
                    s.wl_acquire(&h).unwrap();
                    let p = s.mip_to_ptr(&format!("{seg}#{name}")).unwrap();
                    s.free(&h, &p).unwrap();
                    s.wl_release(&h).unwrap();
                    model.get_mut(seg).unwrap().remove(&name);
                }
                Op::Validate { seg_pick } => {
                    let seg = SEGMENTS[seg_pick as usize % SEGMENTS.len()];
                    validate(&mut clients[cur], seg, &model);
                }
                Op::AbortedTx { seg_pick, block_pick, idx, value } => {
                    let seg = SEGMENTS[seg_pick as usize % SEGMENTS.len()];
                    let names: Vec<String> = model[seg].keys().cloned().collect();
                    if names.is_empty() { continue; }
                    let name = &names[block_pick as usize % names.len()];
                    let len = model[seg][name].len();
                    let i = idx as usize % len;
                    let s = &mut clients[cur];
                    let h = s.open_segment(seg).unwrap();
                    s.tx_begin().unwrap();
                    s.wl_acquire(&h).unwrap();
                    let p = s.mip_to_ptr(&format!("{seg}#{name}")).unwrap();
                    let cell = s.index(&p, i as u32).unwrap();
                    s.write_i32(&cell, value).unwrap();
                    s.tx_abort().unwrap();
                    // Model unchanged.
                }
                Op::SwitchClient { client_pick } => {
                    cur = client_pick as usize % clients.len();
                    for seg in SEGMENTS {
                        clients[cur].open_segment(seg).unwrap();
                    }
                }
            }
        }
        // Every client converges to the model at the end.
        for c in &mut clients {
            for seg in SEGMENTS {
                c.open_segment(seg).unwrap();
                validate(c, seg, &model);
            }
        }
    }
}
