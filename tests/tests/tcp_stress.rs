//! Concurrency stress over real TCP: parallel writers on disjoint blocks,
//! concurrent relaxed readers, and lock churn — all against one server.

use std::sync::Arc;

use iw_core::Session;
use iw_proto::{Coherence, Handler, TcpServer, TcpTransport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

#[test]
fn parallel_writers_and_relaxed_readers_over_tcp() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let tcp = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler).unwrap();
    let addr = tcp.addr();

    // Seed: one counter block per writer.
    const WRITERS: usize = 3;
    const ROUNDS: i64 = 20;
    {
        let mut s = Session::new(
            MachineArch::x86(),
            Box::new(TcpTransport::connect(addr).unwrap()),
        )
        .unwrap();
        let h = s.open_segment("stress/ctrs").unwrap();
        s.wl_acquire(&h).unwrap();
        for i in 0..WRITERS {
            s.malloc(&h, &TypeDesc::int64(), 4, Some(&format!("w{i}")))
                .unwrap();
        }
        s.wl_release(&h).unwrap();
    }

    let archs = [
        MachineArch::x86(),
        MachineArch::sparc_v9(),
        MachineArch::alpha(),
    ];
    let mut threads = Vec::new();
    for (i, arch) in archs.iter().enumerate().take(WRITERS) {
        let arch = arch.clone();
        threads.push(std::thread::spawn(move || {
            let mut s = Session::new(arch, Box::new(TcpTransport::connect(addr).unwrap())).unwrap();
            let h = s.open_segment("stress/ctrs").unwrap();
            for _ in 0..ROUNDS {
                s.wl_acquire(&h).unwrap();
                let p = s.mip_to_ptr(&format!("stress/ctrs#w{i}")).unwrap();
                for k in 0..4 {
                    let c = s.index(&p, k).unwrap();
                    let v = s.read_i64(&c).unwrap();
                    s.write_i64(&c, v + 1).unwrap();
                }
                s.wl_release(&h).unwrap();
            }
        }));
    }
    // Two relaxed readers hammer concurrently; they must only ever see
    // internally consistent snapshots (all four lanes of a block equal,
    // since each writer bumps its four lanes in one critical section).
    for r in 0..2 {
        threads.push(std::thread::spawn(move || {
            let mut s = Session::new(
                MachineArch::mips32(),
                Box::new(TcpTransport::connect(addr).unwrap()),
            )
            .unwrap();
            let h = s.open_segment("stress/ctrs").unwrap();
            s.set_coherence(&h, Coherence::Delta(1 + r)).unwrap();
            for _ in 0..40 {
                s.rl_acquire(&h).unwrap();
                for i in 0..WRITERS {
                    if let Ok(p) = s.mip_to_ptr(&format!("stress/ctrs#w{i}")) {
                        let lane0 = s.read_i64(&s.index(&p, 0).unwrap()).unwrap();
                        for k in 1..4 {
                            let lane = s.read_i64(&s.index(&p, k).unwrap()).unwrap();
                            assert_eq!(
                                lane, lane0,
                                "reader saw a torn block w{i} (lanes {lane0} vs {lane})"
                            );
                        }
                        assert!((0..=ROUNDS).contains(&lane0));
                    }
                }
                s.rl_release(&h).unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    // Final state: every writer completed all rounds.
    let mut s = Session::new(
        MachineArch::x86_64(),
        Box::new(TcpTransport::connect(addr).unwrap()),
    )
    .unwrap();
    let h = s.open_segment("stress/ctrs").unwrap();
    s.rl_acquire(&h).unwrap();
    for i in 0..WRITERS {
        let p = s.mip_to_ptr(&format!("stress/ctrs#w{i}")).unwrap();
        for k in 0..4 {
            assert_eq!(s.read_i64(&s.index(&p, k).unwrap()).unwrap(), ROUNDS);
        }
    }
    s.rl_release(&h).unwrap();
}
