//! Failure-path coverage: server-rejected transaction commits roll back,
//! and the §3.3 locality layout materializes at first fetch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use iw_core::{CoreError, Session};
use iw_proto::msg::{Reply, Request};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

/// A handler wrapper that turns the next `Commit` into a server error
/// (simulating a concurrent administrative rejection or validation
/// failure) while passing everything else through.
struct CommitSabotage {
    inner: Server,
    armed: AtomicBool,
}

impl Handler for CommitSabotage {
    fn handle(&self, request: Bytes) -> Bytes {
        if self.armed.load(Ordering::SeqCst) {
            if let Ok(Request::Commit { .. }) = Request::decode(request.clone()) {
                self.armed.store(false, Ordering::SeqCst);
                return Reply::Error {
                    message: "injected commit failure".into(),
                }
                .encode();
            }
        }
        self.inner.handle(request)
    }
}

#[test]
fn rejected_commit_rolls_back_and_releases_locks() {
    let handler = Arc::new(CommitSabotage {
        inner: Server::new(),
        armed: AtomicBool::new(false),
    });
    let dyn_handler: Arc<dyn Handler> = handler.clone();
    let mut s = Session::new(
        MachineArch::x86(),
        Box::new(Loopback::new(dyn_handler.clone())),
    )
    .unwrap();
    let h = s.open_segment("fp/acct").unwrap();
    s.wl_acquire(&h).unwrap();
    let bal = s.malloc(&h, &TypeDesc::int64(), 1, Some("bal")).unwrap();
    s.write_i64(&bal, 100).unwrap();
    s.wl_release(&h).unwrap();

    // Arm the sabotage, run a transaction.
    handler.armed.store(true, Ordering::SeqCst);
    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    s.write_i64(&bal, 0).unwrap();
    let err = s.tx_commit().unwrap_err();
    assert!(matches!(err, CoreError::Server(_)), "{err}");
    assert!(!s.in_tx());

    // Local state rolled back.
    s.rl_acquire(&h).unwrap();
    assert_eq!(s.read_i64(&bal).unwrap(), 100);
    s.rl_release(&h).unwrap();

    // The write lock was released: another client can proceed, and the
    // server state is untouched.
    let mut other = Session::new(MachineArch::x86(), Box::new(Loopback::new(dyn_handler))).unwrap();
    let ho = other.open_segment("fp/acct").unwrap();
    other.wl_acquire(&ho).unwrap();
    let b = other.mip_to_ptr("fp/acct#bal").unwrap();
    assert_eq!(other.read_i64(&b).unwrap(), 100);
    other.write_i64(&b, 250).unwrap();
    other.wl_release(&ho).unwrap();

    // The original session converges to the new committed state.
    s.rl_acquire(&h).unwrap();
    assert_eq!(s.read_i64(&bal).unwrap(), 250);
    s.rl_release(&h).unwrap();
}

#[test]
fn first_fetch_places_same_version_blocks_contiguously() {
    // §3.3 "Data layout for cache locality": "When a segment is cached at
    // a client for the first time, blocks that have the same version
    // number … are placed in contiguous locations."
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let mut w = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap();
    let h = w.open_segment("fp/layout").unwrap();
    // Three write sections, three blocks each.
    for section in 0..3 {
        w.wl_acquire(&h).unwrap();
        for k in 0..3 {
            let name = format!("s{section}b{k}");
            w.malloc(&h, &TypeDesc::int32(), 8, Some(&name)).unwrap();
        }
        w.wl_release(&h).unwrap();
    }

    // A fresh client's first fetch must group each section's blocks.
    let mut r = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap();
    let hr = r.open_segment("fp/layout").unwrap();
    r.rl_acquire(&hr).unwrap();
    for section in 0..3 {
        let mut vas: Vec<u64> = (0..3)
            .map(|k| {
                r.mip_to_ptr(&format!("fp/layout#s{section}b{k}"))
                    .unwrap()
                    .va()
            })
            .collect();
        vas.sort_unstable();
        // 8 ints = 32 bytes, 16-aligned allocation → stride 32.
        assert_eq!(
            vas[2] - vas[0],
            64,
            "section {section} blocks must be contiguous: {vas:?}"
        );
    }
    r.rl_release(&hr).unwrap();
}
