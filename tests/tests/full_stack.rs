//! Full-stack integration: real TCP sockets, server recovery from
//! checkpoints, transport fault injection, and the two paper
//! applications end to end.

use std::path::PathBuf;
use std::sync::Arc;

use iw_astro::{read_frame, write_steering, FrameChannel, Simulation};
use iw_core::{CoreError, Session};
use iw_mining::{generate, read_lattice, GenConfig, Lattice, LatticePublisher};
use iw_proto::{Coherence, Handler, Loopback, ProtoError, TcpServer, TcpTransport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::{idl, MachineArch};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("iw-integ-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn linked_list_over_real_tcp() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let tcp = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler).unwrap();

    let node_t = idl::compile("struct node { int key; struct node *next; };")
        .unwrap()
        .get("node")
        .unwrap()
        .clone();

    // Writer on one connection, reader on another, different archs.
    let mut w = Session::new(
        MachineArch::mips32(),
        Box::new(TcpTransport::connect(tcp.addr()).unwrap()),
    )
    .unwrap();
    let h = w.open_segment("tcp/list").unwrap();
    w.wl_acquire(&h).unwrap();
    let head = w.malloc(&h, &node_t, 1, Some("head")).unwrap();
    for key in [10, 20, 30] {
        let n = w.malloc(&h, &node_t, 1, None).unwrap();
        w.write_i32(&w.field(&n, "key").unwrap(), key).unwrap();
        let old = w.read_ptr(&w.field(&head, "next").unwrap()).unwrap();
        w.write_ptr(&w.field(&n, "next").unwrap(), old.as_ref())
            .unwrap();
        w.write_ptr(&w.field(&head, "next").unwrap(), Some(&n))
            .unwrap();
    }
    w.wl_release(&h).unwrap();

    let mut r = Session::new(
        MachineArch::x86_64(),
        Box::new(TcpTransport::connect(tcp.addr()).unwrap()),
    )
    .unwrap();
    let hr = r.open_segment("tcp/list").unwrap();
    r.rl_acquire(&hr).unwrap();
    let head_r = r.mip_to_ptr("tcp/list#head").unwrap();
    let mut keys = Vec::new();
    let mut p = r.read_ptr(&r.field(&head_r, "next").unwrap()).unwrap();
    while let Some(n) = p {
        keys.push(r.read_i32(&r.field(&n, "key").unwrap()).unwrap());
        p = r.read_ptr(&r.field(&n, "next").unwrap()).unwrap();
    }
    r.rl_release(&hr).unwrap();
    assert_eq!(keys, vec![30, 20, 10]);
}

#[test]
fn server_recovers_segments_from_checkpoints() {
    let dir = temp_dir("recover");

    // Phase 1: a server with checkpointing every version.
    {
        let handler: Arc<dyn Handler> = Arc::new(Server::with_checkpointing(dir.clone(), 1));
        let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).unwrap();
        let h = s.open_segment("ck/data").unwrap();
        s.wl_acquire(&h).unwrap();
        let arr = s.malloc(&h, &TypeDesc::int32(), 100, Some("arr")).unwrap();
        for i in 0..100 {
            s.write_i32(&s.index(&arr, i).unwrap(), i as i32 * 3)
                .unwrap();
        }
        s.wl_release(&h).unwrap();
        // A second version.
        s.wl_acquire(&h).unwrap();
        s.write_i32(&s.index(&arr, 50).unwrap(), -777).unwrap();
        s.wl_release(&h).unwrap();
    } // server "crashes"

    // Phase 2: a new server process recovers from the checkpoint dir.
    let recovered = Server::recover(dir.clone(), 1).unwrap();
    let handler: Arc<dyn Handler> = Arc::new(recovered);
    let mut s = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(handler))).unwrap();
    let h = s.open_segment("ck/data").unwrap();
    s.rl_acquire(&h).unwrap();
    let arr = s.mip_to_ptr("ck/data#arr").unwrap();
    assert_eq!(s.read_i32(&s.index(&arr, 50).unwrap()).unwrap(), -777);
    assert_eq!(s.read_i32(&s.index(&arr, 99).unwrap()).unwrap(), 297);
    s.rl_release(&h).unwrap();

    // Writes continue from the recovered version.
    s.wl_acquire(&h).unwrap();
    s.write_i32(&s.index(&arr, 0).unwrap(), 1).unwrap();
    s.wl_release(&h).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transport_faults_surface_as_errors_not_corruption() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let mut t = Loopback::new(handler.clone());
    t.drop_every(5);
    let mut s = Session::new(MachineArch::x86(), Box::new(t)).unwrap();
    let h = s.open_segment("fault/seg").unwrap();
    s.wl_acquire(&h).unwrap();
    let x = s.malloc(&h, &TypeDesc::int32(), 1, Some("x")).unwrap();
    s.write_i32(&x, 1).unwrap();

    // Some operation in this loop will hit the dropped request; the
    // session must return an error and stay usable through a healthy
    // transport afterwards.
    let mut saw_error = false;
    for _ in 0..6 {
        match s.wl_release(&h).and_then(|_| s.wl_acquire(&h)) {
            Ok(()) => {}
            Err(CoreError::Proto(ProtoError::Channel(_))) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_error, "fault injection must surface");

    // A fresh, healthy client still sees consistent server state.
    let mut s2 = Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).unwrap();
    let h2 = s2.open_segment("fault/seg").unwrap();
    s2.rl_acquire(&h2).unwrap();
    let x2 = s2.mip_to_ptr("fault/seg#x").unwrap();
    let v = s2.read_i32(&x2).unwrap();
    assert!(
        v == 0 || v == 1,
        "value must be one of the committed states"
    );
    s2.rl_release(&h2).unwrap();
}

#[test]
fn mining_pipeline_end_to_end() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let mut dbsrv = Session::new(
        MachineArch::alpha(),
        Box::new(Loopback::new(handler.clone())),
    )
    .unwrap();
    let mut miner = Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).unwrap();

    let db = generate(&GenConfig::small(11));
    let mut lattice = Lattice::new(3, 3);
    lattice.update(db.slice(0, 100));
    let mut publisher = LatticePublisher::create(&mut dbsrv, "it/lat").unwrap();
    publisher.publish(&mut dbsrv, &lattice).unwrap();

    let h = miner.open_segment("it/lat").unwrap();
    miner.set_coherence(&h, Coherence::Delta(1)).unwrap();
    let first = read_lattice(&mut miner, "it/lat").unwrap();
    assert_eq!(first, lattice.frequent());

    // Two increments; under delta(1) the reader may lag one version but
    // must converge.
    for round in 0..2 {
        lattice.update(db.slice(100 + round * 50, 50));
        publisher.publish(&mut dbsrv, &lattice).unwrap();
    }
    let view = read_lattice(&mut miner, "it/lat").unwrap();
    // Delta(1) at most one version behind: reading once more must be
    // fully current.
    let final_view = read_lattice(&mut miner, "it/lat").unwrap();
    assert_eq!(final_view, lattice.frequent());
    assert!(view.len() <= final_view.len());
}

#[test]
fn astro_pipeline_end_to_end() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let mut simc = Session::new(
        MachineArch::alpha(),
        Box::new(Loopback::new(handler.clone())),
    )
    .unwrap();
    let mut viz = Session::new(MachineArch::mips32(), Box::new(Loopback::new(handler))).unwrap();

    let mut sim = Simulation::new(10, 10);
    let mut chan = FrameChannel::create(&mut simc, "it/astro", &sim).unwrap();
    chan.publish(&mut simc, &sim).unwrap();

    // Steer from the visualizer, absorb, advance, publish.
    write_steering(&mut viz, "it/astro", 0.2, 3.0, 0.1).unwrap();
    chan.absorb_steering(&mut simc, &mut sim).unwrap();
    assert_eq!(sim.injection, 3.0);
    for _ in 0..5 {
        sim.step();
    }
    chan.publish(&mut simc, &sim).unwrap();

    let frame = read_frame(&mut viz, "it/astro").unwrap();
    assert_eq!(frame.step, 5);
    assert_eq!(frame.cells.len(), 100);
    assert!((frame.total_mass - sim.total_mass()).abs() < 1e-9);
}

#[test]
fn many_segments_one_server() {
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).unwrap();
    let mut handles = Vec::new();
    for i in 0..20 {
        let name = format!("multi/seg{i}");
        let h = s.open_segment(&name).unwrap();
        s.wl_acquire(&h).unwrap();
        let p = s.malloc(&h, &TypeDesc::int32(), 4, Some("blk")).unwrap();
        s.write_i32(&s.index(&p, 0).unwrap(), i).unwrap();
        s.wl_release(&h).unwrap();
        handles.push((name, h));
    }
    for (i, (name, h)) in handles.iter().enumerate() {
        s.rl_acquire(h).unwrap();
        let p = s.mip_to_ptr(&format!("{name}#blk")).unwrap();
        assert_eq!(s.read_i32(&s.index(&p, 0).unwrap()).unwrap(), i as i32);
        s.rl_release(h).unwrap();
    }
}

#[test]
fn heterogeneous_quartet_shares_one_structure() {
    // Four architectures collaborating on one counter array.
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let archs = [
        MachineArch::x86(),
        MachineArch::alpha(),
        MachineArch::sparc_v9(),
        MachineArch::mips32(),
    ];
    let mut sessions: Vec<Session> = archs
        .iter()
        .map(|a| Session::new(a.clone(), Box::new(Loopback::new(handler.clone()))).unwrap())
        .collect();

    let h0 = sessions[0].open_segment("quad/ctrs").unwrap();
    sessions[0].wl_acquire(&h0).unwrap();
    sessions[0]
        .malloc(&h0, &TypeDesc::int64(), 4, Some("ctrs"))
        .unwrap();
    sessions[0].wl_release(&h0).unwrap();

    // Each client increments its own counter 10 times.
    for round in 0..10 {
        for (i, s) in sessions.iter_mut().enumerate() {
            let h = s.open_segment("quad/ctrs").unwrap();
            s.wl_acquire(&h).unwrap();
            let ctrs = s.mip_to_ptr("quad/ctrs#ctrs").unwrap();
            let c = s.index(&ctrs, i as u32).unwrap();
            let v = s.read_i64(&c).unwrap();
            assert_eq!(v, round as i64, "client {i} sees its own history");
            s.write_i64(&c, v + 1).unwrap();
            s.wl_release(&h).unwrap();
        }
    }
    // Everyone agrees on the final state.
    for s in &mut sessions {
        let h = s.open_segment("quad/ctrs").unwrap();
        s.rl_acquire(&h).unwrap();
        let ctrs = s.mip_to_ptr("quad/ctrs#ctrs").unwrap();
        for i in 0..4 {
            assert_eq!(s.read_i64(&s.index(&ctrs, i).unwrap()).unwrap(), 10);
        }
        s.rl_release(&h).unwrap();
    }
}
