//! Cross-feature interactions: optimizations meeting applications and
//! each other.

use std::sync::Arc;

use iw_astro::{FrameChannel, Simulation};
use iw_core::{Session, SessionOptions, TrackMode};
use iw_mining::{read_lattice, CustomerSeq, Lattice, LatticePublisher};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn handler() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

#[test]
fn astro_frames_drive_no_diff_adaptation() {
    // A simulation rewrites its whole grid every publish: exactly the
    // workload no-diff mode exists for. After a few frames the frame
    // segment must have adapted, and correctness must be unaffected.
    let srv = handler();
    let mut simc = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap();
    let mut sim = Simulation::new(16, 16);
    let mut chan = FrameChannel::create(&mut simc, "xf/astro", &sim).unwrap();

    for _ in 0..4 {
        sim.step();
        chan.publish(&mut simc, &sim).unwrap();
    }
    let h = simc.open_segment("xf/astro/frame").unwrap();
    let mode = simc.tracking_mode(&h).unwrap();
    assert!(
        matches!(mode, TrackMode::NoDiff { .. }),
        "whole-grid rewrites must engage no-diff mode, got {mode:?}"
    );

    // Back to sparse updates: the re-probe must eventually return to
    // diff mode (probe period is bounded).
    for _ in 0..iw_core::NO_DIFF_PROBE_PERIOD + 2 {
        simc.wl_acquire(&h).unwrap();
        let grid = simc.mip_to_ptr("xf/astro/frame#grid").unwrap();
        let cell = simc.index(&grid, 0).unwrap();
        simc.write_f64(&cell, 42.0).unwrap();
        simc.wl_release(&h).unwrap();
    }
    let mode = simc.tracking_mode(&h).unwrap();
    assert!(
        matches!(mode, TrackMode::Diff),
        "sparse updates after re-probe must return to diffing, got {mode:?}"
    );

    // A fresh reader still sees a consistent frame.
    let mut viz = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(srv))).unwrap();
    let frame = iw_astro::read_frame(&mut viz, "xf/astro").unwrap();
    assert_eq!(frame.cells[0], 42.0);
    assert_eq!(frame.cells.len(), 256);
}

#[test]
fn transaction_on_lattice_publisher_rolls_back_cleanly() {
    // Mix transactions with the mining application: an aborted publish
    // leaves the shared lattice exactly as before.
    let srv = handler();
    let mut p = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap();
    let mut lat = Lattice::new(2, 1);
    lat.update(&[CustomerSeq {
        id: 0,
        transactions: vec![vec![1, 2]],
    }]);
    let mut publisher = LatticePublisher::create(&mut p, "xf/lat").unwrap();
    publisher.publish(&mut p, &lat).unwrap();
    let before = read_lattice(&mut p, "xf/lat").unwrap();

    // Manually mutate a support inside a transaction, then abort.
    let h = p.open_segment("xf/lat").unwrap();
    p.tx_begin().unwrap();
    p.wl_acquire(&h).unwrap();
    let root = p.mip_to_ptr("xf/lat#root").unwrap();
    let first = p
        .read_ptr(&p.field(&root, "first_child").unwrap())
        .unwrap()
        .expect("lattice non-empty");
    p.write_i32(&p.field(&first, "support").unwrap(), 999_999)
        .unwrap();
    p.tx_abort().unwrap();

    let after = read_lattice(&mut p, "xf/lat").unwrap();
    assert_eq!(before, after, "aborted publish must be invisible");
}

#[test]
fn diff_coherence_reader_with_no_diff_writer() {
    // Writer in forced no-diff mode sends whole blocks; a Diff-coherence
    // reader's staleness accounting must still work (whole-block sends
    // count as everything changed, so its bound trips immediately).
    let srv = handler();
    let mut w = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(srv.clone())),
        SessionOptions {
            no_diff_adaptation: false,
            ..Default::default()
        },
    )
    .unwrap();
    let h = w.open_segment("xf/dc").unwrap();
    w.wl_acquire(&h).unwrap();
    let arr = w.malloc(&h, &TypeDesc::int32(), 256, Some("arr")).unwrap();
    w.wl_release(&h).unwrap();
    w.set_tracking_mode(
        &h,
        TrackMode::NoDiff {
            remaining: u32::MAX,
        },
    )
    .unwrap();

    let mut r = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap();
    let hr = r.open_segment("xf/dc").unwrap();
    r.set_coherence(&hr, Coherence::diff_percent(5.0)).unwrap();
    r.rl_acquire(&hr).unwrap();
    r.rl_release(&hr).unwrap();

    // One whole-segment (no-diff) release: > 5% modified by definition.
    w.wl_acquire(&h).unwrap();
    w.write_i32(&w.index(&arr, 3).unwrap(), 1).unwrap();
    w.wl_release(&h).unwrap();

    r.rl_acquire(&hr).unwrap();
    let p = r.mip_to_ptr("xf/dc#arr").unwrap();
    assert_eq!(
        r.read_i32(&r.index(&p, 3).unwrap()).unwrap(),
        1,
        "whole-block release must trip the diff bound"
    );
    r.rl_release(&hr).unwrap();
}

#[test]
fn checkpoint_recovery_preserves_pointer_graphs() {
    let dir = std::env::temp_dir().join(format!("xf-ck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let srv: Arc<dyn Handler> = Arc::new(Server::with_checkpointing(dir.clone(), 1));
        let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap();
        let ty = iw_types::idl::compile("struct n { int v; struct n *next; };")
            .unwrap()
            .get("n")
            .unwrap()
            .clone();
        let h = s.open_segment("xf/ring").unwrap();
        s.wl_acquire(&h).unwrap();
        // A 3-node ring (cycles must survive serialization).
        let a = s.malloc(&h, &ty, 1, Some("a")).unwrap();
        let b = s.malloc(&h, &ty, 1, None).unwrap();
        let c = s.malloc(&h, &ty, 1, None).unwrap();
        for (node, v) in [(&a, 1), (&b, 2), (&c, 3)] {
            s.write_i32(&s.field(node, "v").unwrap(), v).unwrap();
        }
        s.write_ptr(&s.field(&a, "next").unwrap(), Some(&b))
            .unwrap();
        s.write_ptr(&s.field(&b, "next").unwrap(), Some(&c))
            .unwrap();
        s.write_ptr(&s.field(&c, "next").unwrap(), Some(&a))
            .unwrap();
        s.wl_release(&h).unwrap();
    }
    let recovered = Server::recover(dir.clone(), 1).unwrap();
    let srv: Arc<dyn Handler> = Arc::new(recovered);
    let mut s = Session::new(MachineArch::alpha(), Box::new(Loopback::new(srv))).unwrap();
    let h = s.open_segment("xf/ring").unwrap();
    s.rl_acquire(&h).unwrap();
    let a = s.mip_to_ptr("xf/ring#a").unwrap();
    let mut vals = Vec::new();
    let mut cur = a.clone();
    for _ in 0..6 {
        vals.push(s.read_i32(&s.field(&cur, "v").unwrap()).unwrap());
        cur = s
            .read_ptr(&s.field(&cur, "next").unwrap())
            .unwrap()
            .expect("ring");
    }
    assert_eq!(vals, vec![1, 2, 3, 1, 2, 3], "the ring survived recovery");
    assert_eq!(cur.va(), a.va(), "and it still cycles");
    s.rl_release(&h).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
