//! A shared calendar — the "CSCW / non-scientific" workload shape the
//! paper's `mix` experiment models: structures holding integers, doubles,
//! long and short strings, and pointers.
//!
//! Three users on three different (simulated) machines collaborate on one
//! shared week: adding appointments, editing titles, and linking related
//! entries, all with ordinary field reads and writes.
//!
//! ```text
//! cargo run -p iw-examples --bin calendar
//! ```

use std::sync::Arc;

use iw_core::{CoreError, Ptr, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::{idl, MachineArch};

const CAL_IDL: &str = "\
struct appt {\n\
    int day;\n\
    int hour;\n\
    double duration;\n\
    string title<64>;\n\
    string room<8>;\n\
    struct appt *related;\n\
    struct appt *next;\n\
};\n\
struct calendar {\n\
    int count;\n\
    struct appt *first;\n\
};\n";

struct CalClient {
    session: Session,
    handle: iw_core::SegHandle,
}

impl CalClient {
    fn connect(srv: &Arc<dyn Handler>, arch: MachineArch) -> Result<Self, CoreError> {
        let mut session = Session::new(arch, Box::new(Loopback::new(srv.clone())))?;
        let handle = session.open_segment("team/week27")?;
        Ok(CalClient { session, handle })
    }

    fn add_appt(
        &mut self,
        day: i32,
        hour: i32,
        duration: f64,
        title: &str,
        room: &str,
    ) -> Result<Ptr, CoreError> {
        let s = &mut self.session;
        let appt_t = idl::compile(CAL_IDL)
            .expect("static idl")
            .get("appt")
            .unwrap()
            .clone();
        s.wl_acquire(&self.handle)?;
        let cal = s.mip_to_ptr("team/week27#cal")?;
        let a = s.malloc(&self.handle, &appt_t, 1, None)?;
        s.write_i32(&s.field(&a, "day")?, day)?;
        s.write_i32(&s.field(&a, "hour")?, hour)?;
        s.write_f64(&s.field(&a, "duration")?, duration)?;
        s.write_str(&s.field(&a, "title")?, title)?;
        s.write_str(&s.field(&a, "room")?, room)?;
        let first = s.field(&cal, "first")?;
        let old = s.read_ptr(&first)?;
        s.write_ptr(&s.field(&a, "next")?, old.as_ref())?;
        s.write_ptr(&first, Some(&a))?;
        let count = s.field(&cal, "count")?;
        let n = s.read_i32(&count)?;
        s.write_i32(&count, n + 1)?;
        s.wl_release(&self.handle)?;
        Ok(a)
    }

    fn print_week(&mut self, who: &str) -> Result<(), CoreError> {
        let s = &mut self.session;
        s.rl_acquire(&self.handle)?;
        let cal = s.mip_to_ptr("team/week27#cal")?;
        let count = s.read_i32(&s.field(&cal, "count")?)?;
        println!("[{who}] {count} appointments:");
        let mut p = s.read_ptr(&s.field(&cal, "first")?)?;
        let days = ["mon", "tue", "wed", "thu", "fri"];
        while let Some(a) = p {
            let day = s.read_i32(&s.field(&a, "day")?)? as usize;
            let hour = s.read_i32(&s.field(&a, "hour")?)?;
            let dur = s.read_f64(&s.field(&a, "duration")?)?;
            let title = s.read_str(&s.field(&a, "title")?)?;
            let room = s.read_str(&s.field(&a, "room")?)?;
            let related = s.read_ptr(&s.field(&a, "related")?)?;
            let rel = match related {
                Some(r) => format!(" ↪ {}", s.read_str(&s.field(&r, "title")?)?),
                None => String::new(),
            };
            println!(
                "  {} {:02}:00 ({:.1}h) {title} [{room}]{rel}",
                days.get(day).copied().unwrap_or("???"),
                hour,
                dur
            );
            p = s.read_ptr(&s.field(&a, "next")?)?;
        }
        s.rl_release(&self.handle)?;
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());

    // The organizer creates the calendar.
    let mut alice = CalClient::connect(&srv, MachineArch::x86_64())?;
    let cal_t = idl::compile(CAL_IDL)?.get("calendar").unwrap().clone();
    alice.session.wl_acquire(&alice.handle)?;
    alice
        .session
        .malloc(&alice.handle, &cal_t, 1, Some("cal"))?;
    alice.session.wl_release(&alice.handle)?;

    let mut bob = CalClient::connect(&srv, MachineArch::mips32())?;
    let mut carol = CalClient::connect(&srv, MachineArch::sparc_v9())?;

    let standup = alice.add_appt(0, 9, 0.25, "standup", "z1")?;
    bob.add_appt(1, 14, 1.5, "design review: wire-format diffs", "big")?;
    let retro = carol.add_appt(4, 16, 1.0, "retrospective", "z1")?;

    // Carol links the retro to Alice's standup (cross-client pointer!).
    carol.session.wl_acquire(&carol.handle)?;
    let retro_mine = carol
        .session
        .mip_to_ptr(&carol.session.ptr_to_mip(&retro)?)?;
    let standup_mip = alice.session.ptr_to_mip(&standup)?;
    let standup_theirs = carol.session.mip_to_ptr(&standup_mip)?;
    carol.session.write_ptr(
        &carol.session.field(&retro_mine, "related")?,
        Some(&standup_theirs),
    )?;
    carol.session.wl_release(&carol.handle)?;

    // Everyone sees the same week, natively laid out.
    alice.print_week("alice/x86_64")?;
    bob.print_week("bob/mips32")?;
    carol.print_week("carol/sparc")?;

    println!("calendar OK");
    Ok(())
}
