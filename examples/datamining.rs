//! Incremental interactive data mining (paper §4.4).
//!
//! A database server mines a growing QUEST-style transaction database
//! into a sequence lattice shared through InterWeave; a mining client
//! issues queries against its cached copy under a relaxed (Delta)
//! coherence model, so most queries cost no communication at all.
//!
//! ```text
//! cargo run -p iw-examples --bin datamining
//! ```

use std::sync::Arc;

use iw_core::Session;
use iw_mining::{generate, read_lattice, GenConfig, Lattice, LatticePublisher};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::MachineArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server: Arc<dyn Handler> = Arc::new(Server::new());

    // The database server runs on a 64-bit Alpha; the analyst's mining
    // client on a 32-bit x86 desktop.
    let mut dbserver = Session::new(
        MachineArch::alpha(),
        Box::new(Loopback::new(server.clone())),
    )?;
    let mut analyst = Session::new(MachineArch::x86(), Box::new(Loopback::new(server)))?;

    // A scaled-down database (the benchmark harness runs the paper-sized
    // one); same structure: patterns hidden in customer streams.
    let cfg = GenConfig {
        customers: 2_000,
        items: 200,
        avg_transactions: 1.25,
        avg_items_per_txn: 6.0,
        patterns: 100,
        avg_pattern_len: 4.0,
        seed: 2003,
    };
    let db = generate(&cfg);
    println!(
        "database: {} customers, {} item occurrences",
        db.customers.len(),
        db.item_occurrences()
    );

    // Seed the lattice with half the database, as in the paper.
    let mut lattice = Lattice::new(3, 8);
    let half = db.customers.len() / 2;
    lattice.update(db.slice(0, half));
    let mut publisher = LatticePublisher::create(&mut dbserver, "mine/db")?;
    let stats = publisher.publish(&mut dbserver, &lattice)?;
    println!(
        "initial lattice: {} frequent sequences published ({} nodes total)",
        stats.added,
        lattice.node_count()
    );

    // The analyst tolerates being 2 versions stale (Delta-2).
    let h = analyst.open_segment("mine/db")?;
    analyst.set_coherence(&h, Coherence::Delta(2))?;

    // The database grows in 1% increments; the analyst queries after
    // each batch.
    let step = db.customers.len() / 100;
    for round in 0..10 {
        lattice.update(db.slice(half + round * step, step));
        let s = publisher.publish(&mut dbserver, &lattice)?;

        let view = read_lattice(&mut analyst, "mine/db")?;
        let mut top: Vec<_> = view.iter().filter(|(s, _)| s.len() >= 2).collect();
        top.sort_by_key(|e| std::cmp::Reverse(e.1));
        let best = top
            .first()
            .map(|(s, c)| format!("{s:?} (support {c})"))
            .unwrap_or_else(|| "none yet".into());
        println!(
            "round {:2}: +{} nodes, {} updated | analyst sees {} sequences; hottest pair+: {}",
            round + 1,
            s.added,
            s.updated,
            view.len(),
            best
        );
    }

    let t = analyst.transport_stats();
    println!(
        "analyst traffic: {} KiB received over {} requests (delta-2 skipped the rest)",
        t.bytes_received / 1024,
        t.requests
    );
    println!("datamining OK");
    Ok(())
}
