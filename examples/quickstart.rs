//! Quickstart: the paper's Figure 1 shared linked list.
//!
//! Two clients — one simulating a little-endian 32-bit x86 machine, one a
//! big-endian 64-bit SPARC — share the list `host/list` through one
//! InterWeave server. Run with:
//!
//! ```text
//! cargo run -p iw-examples --bin quickstart
//! ```

use std::sync::Arc;

use iw_core::{CoreError, Ptr, SegHandle, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::{idl, MachineArch};

const LIST_IDL: &str = "struct node { int key; struct node *next; };";

/// `list_insert` from Figure 1.
fn list_insert(s: &mut Session, h: &SegHandle, head: &Ptr, key: i32) -> Result<(), CoreError> {
    s.wl_acquire(h)?; // write lock
    let node_t = idl::compile(LIST_IDL)
        .expect("static idl")
        .get("node")
        .unwrap()
        .clone();
    let p = s.malloc(h, &node_t, 1, None)?;
    s.write_i32(&s.field(&p, "key")?, key)?;
    let old_first = s.read_ptr(&s.field(head, "next")?)?;
    s.write_ptr(&s.field(&p, "next")?, old_first.as_ref())?;
    s.write_ptr(&s.field(head, "next")?, Some(&p))?;
    s.wl_release(h)?; // write unlock
    Ok(())
}

/// `list_search` from Figure 1.
fn list_search(s: &mut Session, h: &SegHandle, head: &Ptr, key: i32) -> Result<bool, CoreError> {
    s.rl_acquire(h)?; // read lock
    let mut p = s.read_ptr(&s.field(head, "next")?)?;
    while let Some(node) = p {
        if s.read_i32(&s.field(&node, "key")?)? == key {
            s.rl_release(h)?;
            return Ok(true);
        }
        p = s.read_ptr(&s.field(&node, "next")?)?;
    }
    s.rl_release(h)?; // read unlock
    Ok(false)
}

fn walk(s: &mut Session, h: &SegHandle, head: &Ptr) -> Result<Vec<i32>, CoreError> {
    s.rl_acquire(h)?;
    let mut keys = Vec::new();
    let mut p = s.read_ptr(&s.field(head, "next")?)?;
    while let Some(node) = p {
        keys.push(s.read_i32(&s.field(&node, "key")?)?);
        p = s.read_ptr(&s.field(&node, "next")?)?;
    }
    s.rl_release(h)?;
    Ok(keys)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server: Arc<dyn Handler> = Arc::new(Server::new());

    // Client A: 32-bit little-endian x86.
    let mut a = Session::new(MachineArch::x86(), Box::new(Loopback::new(server.clone())))?;
    // Client B: 64-bit big-endian SPARC.
    let mut b = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(server)))?;

    println!("client A: {}", a.arch());
    println!("client B: {}", b.arch());

    // list_init() — client A creates the header node.
    let node_t = idl::compile(LIST_IDL)?.get("node").unwrap().clone();
    let ha = a.open_segment("host/list")?;
    a.wl_acquire(&ha)?;
    let head_a = a.malloc(&ha, &node_t, 1, Some("head"))?;
    a.wl_release(&ha)?;

    // A inserts odd keys.
    for key in [1, 3, 5] {
        list_insert(&mut a, &ha, &head_a, key)?;
    }

    // B bootstraps via the MIP "host/list#head" and inserts even keys.
    let hb = b.open_segment("host/list")?;
    let head_b = b.mip_to_ptr("host/list#head")?;
    for key in [2, 4, 6] {
        list_insert(&mut b, &hb, &head_b, key)?;
    }

    // Both clients see the same list, each in its own native layout.
    let via_a = walk(&mut a, &ha, &head_a)?;
    let via_b = walk(&mut b, &hb, &head_b)?;
    println!("list via A (x86):   {via_a:?}");
    println!("list via B (sparc): {via_b:?}");
    assert_eq!(via_a, via_b);
    assert_eq!(via_a, vec![6, 4, 2, 5, 3, 1]);

    for key in [4, 42] {
        println!(
            "search key {key:2}: {}",
            if list_search(&mut b, &hb, &head_b, key)? {
                "found"
            } else {
                "absent"
            }
        );
    }

    println!(
        "traffic A: {} B sent / {} B received over {} requests",
        a.transport_stats().bytes_sent,
        a.transport_stats().bytes_received,
        a.transport_stats().requests,
    );
    println!("quickstart OK");
    Ok(())
}
