//! Transactions across multiple servers (the paper's §6 future work,
//! implemented).
//!
//! Two banks run their own InterWeave servers; account segments live at
//! each bank's host. A teller session connected to both performs
//! transfers as transactions: both balances move or neither does, and an
//! aborted transfer rolls back from page twins.
//!
//! ```text
//! cargo run -p iw-examples --bin bank
//! ```

use std::sync::Arc;

use iw_core::{CoreError, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::{idl, MachineArch};

const ACCT_IDL: &str = "struct acct { hyper balance; int ops; string owner<24>; };";

fn open_account(
    s: &mut Session,
    segment: &str,
    owner: &str,
    opening: i64,
) -> Result<(), CoreError> {
    let acct_t = idl::compile(ACCT_IDL)
        .expect("static idl")
        .get("acct")
        .unwrap()
        .clone();
    let h = s.open_segment(segment)?;
    s.wl_acquire(&h)?;
    let a = s.malloc(&h, &acct_t, 1, Some("acct"))?;
    s.write_i64(&s.field(&a, "balance")?, opening)?;
    s.write_str(&s.field(&a, "owner")?, owner)?;
    s.wl_release(&h)?;
    Ok(())
}

fn transfer(
    s: &mut Session,
    from: &str,
    to: &str,
    amount: i64,
) -> Result<Result<(), String>, CoreError> {
    let hf = s.open_segment(from)?;
    let ht = s.open_segment(to)?;
    s.tx_begin()?;
    s.wl_acquire(&hf)?;
    s.wl_acquire(&ht)?;
    let fa = s.mip_to_ptr(&format!("{from}#acct"))?;
    let ta = s.mip_to_ptr(&format!("{to}#acct"))?;
    let fbal = s.read_i64(&s.field(&fa, "balance")?)?;
    if fbal < amount {
        // Business rule violated: abort. Twins roll everything back.
        s.tx_abort()?;
        return Ok(Err(format!("insufficient funds: {fbal} < {amount}")));
    }
    let tbal = s.read_i64(&s.field(&ta, "balance")?)?;
    s.write_i64(&s.field(&fa, "balance")?, fbal - amount)?;
    s.write_i64(&s.field(&ta, "balance")?, tbal + amount)?;
    for p in [&fa, &ta] {
        let ops = s.field(p, "ops")?;
        let n = s.read_i32(&ops)?;
        s.write_i32(&ops, n + 1)?;
    }
    s.tx_commit()?;
    Ok(Ok(()))
}

fn balance(s: &mut Session, segment: &str) -> Result<(String, i64, i32), CoreError> {
    let h = s.open_segment(segment)?;
    s.rl_acquire(&h)?;
    let a = s.mip_to_ptr(&format!("{segment}#acct"))?;
    let owner = s.read_str(&s.field(&a, "owner")?)?;
    let bal = s.read_i64(&s.field(&a, "balance")?)?;
    let ops = s.read_i32(&s.field(&a, "ops")?)?;
    s.rl_release(&h)?;
    Ok((owner, bal, ops))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two independent banks, each its own InterWeave server.
    let north: Arc<dyn Handler> = Arc::new(Server::new());
    let south: Arc<dyn Handler> = Arc::new(Server::new());

    // The teller speaks to both; segments route by URL host.
    let mut teller = Session::new(
        MachineArch::x86_64(),
        Box::new(Loopback::new(north.clone())),
    )?;
    teller.add_server("south.bank", Box::new(Loopback::new(south.clone())))?;

    open_account(&mut teller, "north.bank/ada", "Ada", 120)?;
    open_account(&mut teller, "south.bank/bob", "Bob", 40)?;

    println!("opening:");
    for seg in ["north.bank/ada", "south.bank/bob"] {
        let (owner, bal, ops) = balance(&mut teller, seg)?;
        println!("  {seg}: {owner} has {bal} ({ops} ops)");
    }

    println!("\ntransfer 50 Ada -> Bob (cross-server transaction):");
    match transfer(&mut teller, "north.bank/ada", "south.bank/bob", 50)? {
        Ok(()) => println!("  committed"),
        Err(e) => println!("  aborted: {e}"),
    }

    println!("transfer 500 Ada -> Bob (must abort, twins roll back):");
    match transfer(&mut teller, "north.bank/ada", "south.bank/bob", 500)? {
        Ok(()) => println!("  committed"),
        Err(e) => println!("  aborted: {e}"),
    }

    println!("\nfinal:");
    let mut total = 0;
    for seg in ["north.bank/ada", "south.bank/bob"] {
        let (owner, bal, ops) = balance(&mut teller, seg)?;
        println!("  {seg}: {owner} has {bal} ({ops} ops)");
        total += bal;
    }
    assert_eq!(total, 160, "money is conserved");
    println!("total across banks: {total} (conserved)");
    println!("bank OK");
    Ok(())
}
