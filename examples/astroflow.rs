//! On-line visualization and steering of a running simulation (paper
//! §4.5) — over a real TCP connection.
//!
//! The simulator thread publishes density frames into an InterWeave
//! segment; the visualization client renders them as ASCII art under a
//! temporal coherence bound and steers the simulation by writing the
//! steering segment. The two sides talk to an InterWeave server bound to
//! an ephemeral localhost port.
//!
//! ```text
//! cargo run -p iw-examples --bin astroflow
//! ```

use std::sync::Arc;

use iw_astro::{read_frame, write_steering, FrameChannel, Simulation};
use iw_core::Session;
use iw_proto::{Coherence, Handler, TcpServer, TcpTransport};
use iw_server::Server;
use iw_types::MachineArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A real server on a real socket.
    let handler: Arc<dyn Handler> = Arc::new(Server::new());
    let tcp = TcpServer::spawn("127.0.0.1:0".parse()?, handler)?;
    println!("InterWeave server listening on {}", tcp.addr());

    // Simulator: "runs on a cluster of AlphaServer nodes" — an alpha
    // client here.
    let mut simclient = Session::new(
        MachineArch::alpha(),
        Box::new(TcpTransport::connect(tcp.addr())?),
    )?;
    let mut sim = Simulation::new(24, 16);
    let mut chan = FrameChannel::create(&mut simclient, "astro/demo", &sim)?;
    chan.publish(&mut simclient, &sim)?;

    // Visualizer: "a visualization tool written in Java and running on a
    // Pentium desktop" — an x86 client, 150 ms temporal bound.
    let mut viz = Session::new(
        MachineArch::x86(),
        Box::new(TcpTransport::connect(tcp.addr())?),
    )?;
    let fh = viz.open_segment("astro/demo/frame")?;
    viz.set_coherence(&fh, Coherence::Temporal(150))?;

    for epoch in 0..3 {
        // The simulator advances, absorbing steering between epochs.
        let paused = chan.absorb_steering(&mut simclient, &mut sim)?;
        if !paused {
            for _ in 0..10 {
                sim.step();
            }
            chan.publish(&mut simclient, &sim)?;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));

        let frame = read_frame(&mut viz, "astro/demo")?;
        println!(
            "epoch {epoch}: step {} t={:.2} mass={:.1}",
            frame.step, frame.time, frame.total_mass
        );
        println!("{}", frame.ascii_art(48, 12));

        // The scientist cranks up the injection rate after the first look.
        if epoch == 0 {
            println!("steering: injection 1.0 -> 8.0");
            write_steering(&mut viz, "astro/demo", 0.15, 8.0, 0.6)?;
        }
    }

    let t = viz.transport_stats();
    println!(
        "visualizer traffic: {} KiB over {} requests (temporal bound trimmed polling)",
        t.total_bytes() / 1024,
        t.requests
    );
    println!("astroflow OK");
    Ok(())
}
